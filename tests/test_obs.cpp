// Tests for the observability layer:
//  * LatencyHistogram export — known bucket fills, the Prometheus golden
//    format (cumulative _bucket{le=...} in seconds, _sum/_count), JSON and
//    text shapes, and merge-racing-export coherence (a TSAN target),
//  * MetricsRegistry collector semantics — ordering, exact removal
//    (destructor safety), snapshot-under-concurrency,
//  * the Tracer — span-tree assembly with late-bound correlators, ring
//    overwrite-oldest, the slow-request log, reset isolation, per-phase
//    summaries, and collect-while-recording (TSAN),
//  * the introspection endpoint end to end: metrics formats over
//    CasService::bind, version gating, and the acceptance flow — a full
//    attest + get_config through the server::CasServer frontend whose span
//    tree is then retrieved via CasClient::introspect().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cas/client.h"
#include "cas/service.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "runtime/starter.h"
#include "server/cas_server.h"
#include "workload/testbed.h"

namespace sinclave::obs {
namespace {

using namespace std::chrono_literals;

// Index of the bucket a duration lands in, via the public bound API.
std::size_t bucket_index(std::chrono::nanoseconds d) {
  const std::int64_t bound = LatencyHistogram::bucket_bound(d).count();
  const auto& bounds = LatencyHistogram::bucket_bounds_ns();
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
    if (bounds[i] == bound) return i;
  ADD_FAILURE() << "bound " << bound << " not in the table";
  return 0;
}

// The exporters' seconds formatting ("%.9g of ns/1e9") — reproduced here
// so golden assertions track the documented format, not a copied string.
std::string seconds(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(ns) / 1e9);
  return std::string(buf);
}

TEST(LatencyHistogramExport, KnownBucketFill) {
  LatencyHistogram h;
  for (int i = 0; i < 3; ++i) h.record(2us);
  for (int i = 0; i < 2; ++i) h.record(10us);
  h.record(1ms);

  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[bucket_index(2us)], 3u);
  EXPECT_EQ(counts[bucket_index(10us)], 2u);
  EXPECT_EQ(counts[bucket_index(1ms)], 1u);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 6u);

  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 3 * 2us + 2 * 10us + 1ms);
  EXPECT_EQ(s.max, std::chrono::nanoseconds(1ms));  // exact, not bucketed
  // Quantiles resolve to bucket upper bounds: the 3rd of 6 samples sits in
  // the 2us bucket, the 5th in the 10us bucket.
  EXPECT_EQ(s.p50, LatencyHistogram::bucket_bound(2us));
  EXPECT_EQ(s.p90, LatencyHistogram::bucket_bound(10us));
  EXPECT_LE(s.p50.count(), s.p90.count());
  EXPECT_LE(s.p90.count(), s.p99.count());
  EXPECT_LE(s.p99.count(), s.max.count());
}

TEST(LatencyHistogramExport, PrometheusGoldenFormat) {
  LatencyHistogram h;
  h.record(2us);
  h.record(10us);

  MetricsSnapshot snap;
  snap.counter("requests_total", 7);
  snap.gauge("in_flight", 3);
  snap.histogram("rtt", h);
  const std::string out = snap.to_prometheus();

  // Counters and gauges: sinclave_ prefix plus a TYPE line each.
  EXPECT_NE(out.find("# TYPE sinclave_requests_total counter\n"
                     "sinclave_requests_total 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE sinclave_in_flight gauge\n"
                     "sinclave_in_flight 3\n"),
            std::string::npos);

  // Histograms: _seconds suffix, cumulative buckets in seconds, +Inf,
  // _sum, and _count equal to the bucket series total.
  EXPECT_NE(out.find("# TYPE sinclave_rtt_seconds histogram\n"),
            std::string::npos);
  const auto& bounds = LatencyHistogram::bucket_bounds_ns();
  const std::string b2us = "sinclave_rtt_seconds_bucket{le=\"" +
                           seconds(bounds[bucket_index(2us)]) + "\"} 1\n";
  const std::string b10us = "sinclave_rtt_seconds_bucket{le=\"" +
                            seconds(bounds[bucket_index(10us)]) + "\"} 2\n";
  EXPECT_NE(out.find(b2us), std::string::npos) << out;
  EXPECT_NE(out.find(b10us), std::string::npos) << out;
  EXPECT_NE(out.find("sinclave_rtt_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("sinclave_rtt_seconds_sum " + seconds(12'000) + "\n"),
            std::string::npos);
  EXPECT_NE(out.find("sinclave_rtt_seconds_count 2\n"), std::string::npos);

  // Cumulative monotonicity across the whole bucket series.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  std::size_t seen = 0;
  while ((pos = out.find("_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t val = out.find("} ", pos);
    ASSERT_NE(val, std::string::npos);
    const std::uint64_t v = std::stoull(out.substr(val + 2));
    EXPECT_GE(v, prev);
    prev = v;
    pos = val;
    ++seen;
  }
  EXPECT_EQ(seen, LatencyHistogram::kBuckets + 1);  // all bounds + +Inf
}

TEST(LatencyHistogramExport, JsonAndTextShapes) {
  LatencyHistogram h;
  h.record(2us);

  MetricsSnapshot snap;
  snap.counter("requests_total", 7);
  snap.gauge("in_flight", 3);
  snap.histogram("rtt", h);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\": {\"requests_total\": 7}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauges\": {\"in_flight\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"rtt\": {\"count\": 1"), std::string::npos);
  // Only occupied buckets are emitted.
  const std::string bucket =
      "\"buckets\": [{\"le_ns\": " +
      std::to_string(
          LatencyHistogram::bucket_bounds_ns()[bucket_index(2us)]) +
      ", \"count\": 1}]";
  EXPECT_NE(json.find(bucket), std::string::npos) << json;

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("requests_total"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);

  // find() resolves by bare name.
  ASSERT_NE(snap.find("rtt"), nullptr);
  EXPECT_EQ(snap.find("rtt")->stats.count, 1u);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

// A writer merging + recording while another thread exports: TSAN must be
// clean, and every observed snapshot must satisfy the coherence contract.
TEST(LatencyHistogramExport, MergeWhileExportKeepsInvariants) {
  LatencyHistogram dst;
  LatencyHistogram src;
  for (int i = 0; i < 8; ++i) src.record(std::chrono::microseconds(1 << i));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 300 && !stop.load(); ++i) {
      dst.merge(src);
      dst.record(std::chrono::microseconds(i % 50 + 1));
    }
    stop.store(true);
  });

  std::uint64_t last_count = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    MetricsSnapshot snap;
    snap.histogram("racing", dst);
    const auto* e = snap.find("racing");
    ASSERT_NE(e, nullptr);
    EXPECT_LE(e->stats.p50.count(), e->stats.p90.count());
    EXPECT_LE(e->stats.p90.count(), e->stats.p99.count());
    EXPECT_LE(e->stats.p99.count(), e->stats.max.count());
    // Bucket-derived _count never exceeds what stats.count saw (buckets
    // are copied first).
    std::uint64_t bucket_total = 0;
    for (auto c : e->buckets) bucket_total += c;
    EXPECT_LE(bucket_total, e->stats.count);
    EXPECT_GE(e->stats.count, last_count);  // no reset: monotone
    last_count = e->stats.count;
    (void)snap.to_prometheus();
  }
  writer.join();
}

TEST(MetricsRegistry, CollectorsRunInOrderAndRemoveIsExact) {
  MetricsRegistry reg;
  const std::uint64_t a =
      reg.add_collector([](MetricsSnapshot& s) { s.counter("a", 1); });
  const std::uint64_t b =
      reg.add_collector([](MetricsSnapshot& s) { s.counter("b", 2); });

  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].name, "a");  // registration order
  EXPECT_EQ(snap.entries[1].name, "b");

  reg.remove_collector(a);
  snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].name, "b");
  reg.remove_collector(b);
  EXPECT_TRUE(reg.snapshot().entries.empty());
  reg.remove_collector(a);  // double remove: harmless
}

// remove_collector() returning guarantees no snapshot is mid-callback —
// the property that lets registrants unregister from their destructors.
TEST(MetricsRegistry, RemoveWhileSnapshottingIsSafe) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) (void)reg.snapshot();
  });

  for (int i = 0; i < 100; ++i) {
    auto calls = std::make_shared<std::atomic<int>>(0);
    const std::uint64_t id = reg.add_collector(
        [calls](MetricsSnapshot& s) { s.counter("x", ++*calls); });
    (void)reg.snapshot();
    reg.remove_collector(id);
    const int after_remove = calls->load();
    (void)reg.snapshot();
    (void)reg.snapshot();
    EXPECT_EQ(calls->load(), after_remove);  // never called again
  }
  stop.store(true);
  reader.join();
}

TEST(Tracer, AssemblesSpanTreeWithCorrelators) {
  Tracer& tracer = Tracer::instance();
  tracer.reset_traces();
  Phase& p_root = tracer.phase("test_root");
  Phase& p_outer = tracer.phase("test_outer");
  Phase& p_inner = tracer.phase("test_inner");
  Phase& p_late = tracer.phase("test_late");

  TraceContext ctx;
  ctx.trace_id = tracer.new_trace_id();
  ctx.request_id = 77;
  const std::int64_t t0 = Tracer::now_ns();
  {
    TraceScope scope(ctx);
    {
      Span outer(p_outer);
      Span inner(p_inner);
    }
    // The handshake allocates the session id mid-request.
    TraceScope::set_session(555);
    { Span late(p_late); }
    tracer.record_phase_root(p_root, TraceScope::current(), t0,
                             Tracer::now_ns());
  }
  EXPECT_FALSE(TraceScope::active());  // scope restored

  const std::vector<Trace> traces = tracer.collect(8);
  const Trace* found = nullptr;
  for (const Trace& t : traces)
    if (t.trace_id == ctx.trace_id) found = &t;
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->request_id, 77u);
  // Propagated from the one span recorded after set_session.
  EXPECT_EQ(found->session_id, 555u);
  ASSERT_EQ(found->spans.size(), 4u);
  // Root first (earliest start, lowest depth on ties), depths as nested.
  EXPECT_STREQ(found->spans[0].name, "test_root");
  EXPECT_EQ(found->spans[0].depth, 0u);
  const auto find_span = [&](const char* name) -> const CollectedSpan* {
    for (const CollectedSpan& s : found->spans)
      if (std::string(s.name) == name) return &s;
    return nullptr;
  };
  ASSERT_NE(find_span("test_outer"), nullptr);
  EXPECT_EQ(find_span("test_outer")->depth, 1u);
  ASSERT_NE(find_span("test_inner"), nullptr);
  EXPECT_EQ(find_span("test_inner")->depth, 2u);
  EXPECT_EQ(find_span("test_late")->depth, 1u);

  // The renderer shows every span with its indentation.
  const std::string rendered = Tracer::render(*found);
  EXPECT_NE(rendered.find("test_root"), std::string::npos);
  EXPECT_NE(rendered.find("  test_inner"), std::string::npos);
}

TEST(Tracer, RingOverwritesOldestKeepsNewest) {
  Tracer& tracer = Tracer::instance();
  tracer.reset_traces();
  Phase& p = tracer.phase("test_churn");

  // All on this one thread: one ring, so capacity + extra roots must
  // evict exactly the oldest extras.
  constexpr std::size_t kExtra = 64;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < Tracer::kRingCapacity + kExtra; ++i) {
    TraceContext ctx;
    ctx.trace_id = tracer.new_trace_id();
    const std::int64_t now = Tracer::now_ns();
    tracer.record_phase_root(p, ctx, now, now);
    ids.push_back(ctx.trace_id);
  }

  const std::vector<Trace> traces = tracer.collect(2 * Tracer::kRingCapacity);
  ASSERT_EQ(traces.size(), Tracer::kRingCapacity);
  std::vector<std::uint64_t> got;
  for (const Trace& t : traces) got.push_back(t.trace_id);
  // Newest first; the first kExtra recorded ids were overwritten.
  EXPECT_EQ(got.front(), ids.back());
  for (std::size_t i = 0; i < kExtra; ++i)
    EXPECT_EQ(std::find(got.begin(), got.end(), ids[i]), got.end())
        << "id " << ids[i] << " should have been overwritten";
  EXPECT_NE(std::find(got.begin(), got.end(), ids[kExtra]), got.end());
}

TEST(Tracer, SlowLogRetainsSlowTraces) {
  Tracer& tracer = Tracer::instance();
  tracer.reset_traces();
  const std::chrono::nanoseconds saved = tracer.slow_threshold();
  tracer.set_slow_threshold(1ms);
  Phase& p = tracer.phase("test_slow_root");

  const std::uint64_t before = tracer.slow_count();

  // One fast trace (stays out of the log) and one synthetic 2ms trace.
  TraceContext fast;
  fast.trace_id = tracer.new_trace_id();
  const std::int64_t t0 = Tracer::now_ns();
  tracer.record_phase_root(p, fast, t0, t0 + 1000);

  TraceContext slow;
  slow.trace_id = tracer.new_trace_id();
  slow.request_id = 99;
  tracer.record_phase_root(p, slow, t0, t0 + 2'000'000);

  EXPECT_EQ(tracer.slow_count(), before + 1);
  const std::vector<Trace> log = tracer.slow_traces();
  ASSERT_FALSE(log.empty());
  const Trace& last = log.back();
  EXPECT_EQ(last.trace_id, slow.trace_id);
  EXPECT_GE(last.duration_ns(), 1'000'000);
  for (const Trace& t : log) EXPECT_NE(t.trace_id, fast.trace_id);

  // Harvest is once per trace: a second look must not duplicate.
  const std::size_t size = log.size();
  EXPECT_EQ(tracer.slow_traces().size(), size);
  tracer.set_slow_threshold(saved);
}

TEST(Tracer, ResetTracesHidesHistory) {
  Tracer& tracer = Tracer::instance();
  Phase& p = tracer.phase("test_reset");

  TraceContext ctx;
  ctx.trace_id = tracer.new_trace_id();
  const std::int64_t now = Tracer::now_ns();
  tracer.record_phase_root(p, ctx, now, now);
  tracer.reset_traces();

  for (const Trace& t : tracer.collect(2 * Tracer::kRingCapacity))
    EXPECT_NE(t.trace_id, ctx.trace_id);
  EXPECT_TRUE(tracer.slow_traces().empty());
}

TEST(Tracer, PhaseSummariesScopeToWindow) {
  Tracer& tracer = Tracer::instance();
  tracer.reset_phases();
  Phase& pa = tracer.phase("test_window_a");
  Phase& pb = tracer.phase("test_window_b");

  TraceContext ctx;  // inactive: histograms record, rings don't
  tracer.record_phase_span(pa, ctx, 0, 5'000, 1);
  tracer.record_phase_span(pa, ctx, 0, 5'000, 1);
  tracer.record_phase_span(pb, ctx, 0, 9'000, 1);

  const auto rows = tracer.phase_summaries();
  const auto find_row = [&](const char* name) -> const Tracer::PhaseSummary* {
    for (const auto& r : rows)
      if (std::string(r.name) == name) return &r;
    return nullptr;
  };
  ASSERT_NE(find_row("test_window_a"), nullptr);
  EXPECT_EQ(find_row("test_window_a")->stats.count, 2u);
  EXPECT_EQ(find_row("test_window_a")->stats.max, 5us);
  ASSERT_NE(find_row("test_window_b"), nullptr);
  EXPECT_EQ(find_row("test_window_b")->stats.count, 1u);
  // Every returned row recorded something in this window.
  for (const auto& r : rows) EXPECT_GT(r.stats.count, 0u);

  tracer.reset_phases();
  EXPECT_EQ(find_row("test_window_a"), find_row("test_window_a"));
  for (const auto& r : tracer.phase_summaries())
    EXPECT_NE(std::string(r.name), "test_window_a");
}

// Writers record spans under live scopes while a collector drains their
// rings: the seqlock must keep TSAN quiet and the data untorn.
TEST(Tracer, CollectWhileRecordingIsSafe) {
  Tracer& tracer = Tracer::instance();
  tracer.reset_traces();
  Phase& p_work = tracer.phase("test_race_work");
  Phase& p_root = tracer.phase("test_race_root");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 2000; ++i) {
        TraceContext ctx;
        ctx.trace_id = tracer.new_trace_id();
        ctx.request_id = static_cast<std::uint64_t>(w * 10000 + i);
        const std::int64_t t0 = Tracer::now_ns();
        {
          TraceScope scope(ctx);
          Span span(p_work);
        }
        tracer.record_phase_root(p_root, ctx, t0, Tracer::now_ns());
      }
    });
  }

  std::thread collector([&] {
    while (!stop.load()) {
      for (const Trace& t : tracer.collect(16)) {
        EXPECT_NE(t.trace_id, 0u);
        for (const CollectedSpan& s : t.spans) {
          EXPECT_EQ(s.trace_id, t.trace_id);  // untorn slot
          EXPECT_GE(s.end_ns, s.start_ns);
        }
      }
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true);
  collector.join();
}

}  // namespace
}  // namespace sinclave::obs

// ---------------------------------------------------------------------------
// The introspection endpoint end to end.
// ---------------------------------------------------------------------------

namespace sinclave::cas {
namespace {

class ObsIntrospectionTest : public ::testing::Test {
 protected:
  static constexpr const char* kServerAddress = "cas.fleet";

  ObsIntrospectionTest()
      : bed_(workload::TestbedConfig{.seed = 91}),
        image_(core::EnclaveImage::synthetic("obs", sgx::kPageSize,
                                             4 * sgx::kPageSize)),
        signer_(&bed_.user_signer()),
        signed_(signer_.sign_sinclave(image_)) {
    Policy p;
    p.session_name = "s";
    p.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    p.require_singleton = true;
    p.base_hash = signed_.base_hash;
    p.config.program = "noop";
    bed_.cas().install_policy(p);
  }

  workload::Testbed bed_;
  core::EnclaveImage image_;
  core::Signer signer_;
  core::SinclaveSignedImage signed_;
};

TEST_F(ObsIntrospectionTest, MetricsFormatsOverServiceBind) {
  CasClient client = bed_.make_cas_client();

  IntrospectRequest req;
  req.format = MetricsFormat::kPrometheus;
  IntrospectResponse resp = client.introspect(req);
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_NE(resp.metrics.find("# TYPE sinclave_tokens_outstanding gauge"),
            std::string::npos)
      << resp.metrics;
  EXPECT_NE(resp.metrics.find("sinclave_tokens_spent"), std::string::npos);

  req.format = MetricsFormat::kText;
  resp = client.introspect(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp.metrics.find("tokens_outstanding"), std::string::npos);
  EXPECT_EQ(resp.metrics.find("sinclave_"), std::string::npos);

  req.format = MetricsFormat::kJson;
  resp = client.introspect(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp.metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(resp.metrics.find("\"tokens_spent\""), std::string::npos);

  // An out-of-range format byte is a typed refusal, not a crash.
  req.format = static_cast<MetricsFormat>(9);
  resp = client.introspect(req);
  EXPECT_EQ(resp.status.code, StatusCode::kMalformedRequest);
}

TEST_F(ObsIntrospectionTest, FutureVersionAndMissingHandlerAreTyped) {
  // A future-version kIntrospect envelope: typed refusal decodable by the
  // future client (the Status prefix layout is frozen).
  Envelope fut;
  fut.version = kProtocolVersion + 1;
  fut.command = Command::kIntrospect;
  fut.request_id = 9;
  fut.payload = IntrospectRequest{}.serialize();
  auto conn = bed_.network().connect(bed_.cas_address() + ".instance");
  const Envelope reply = Envelope::deserialize(conn.call(fut.serialize()));
  EXPECT_EQ(reply.command, Command::kIntrospect);
  EXPECT_EQ(reply.request_id, 9u);
  const IntrospectResponse refused =
      IntrospectResponse::deserialize(reply.payload);
  EXPECT_EQ(refused.status.code, StatusCode::kUnsupportedVersion);

  // A frontend with no introspect handler answers kUnknownCommand —
  // indistinguishable from a pre-introspection server.
  Envelope cur = fut;
  cur.version = kProtocolVersion;
  FrameInfo info;
  const Bytes raw = serve_instance_frame(
      cur.serialize(), [](const InstanceRequest&) { return InstanceResponse{}; },
      &info);
  EXPECT_EQ(info.status, StatusCode::kUnknownCommand);
  const InstanceResponse unknown = InstanceResponse::deserialize(
      Envelope::deserialize(raw).payload);
  EXPECT_EQ(unknown.status.code, StatusCode::kUnknownCommand);
}

// The acceptance flow: a full attested session through the server::CasServer
// frontend, whose span tree — root plus at least five named phases — is then
// retrieved through the introspection endpoint of the same frontend.
TEST_F(ObsIntrospectionTest, AttestGetConfigTraceRetrievableViaIntrospection) {
  server::CasServer server(&bed_.cas(), server::CasServerConfig{.workers = 2});
  server.bind(bed_.network(), kServerAddress);
  obs::Tracer::instance().reset_traces();

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), kServerAddress, image_, signed_.sigstruct,
      "s");
  ASSERT_TRUE(start.ok()) << start.error;

  AttestedChannel channel(&bed_.network(), kServerAddress,
                          crypto::Drbg::from_seed(17, "obs-chan"));
  const sgx::Report report =
      bed_.cpu().ereport(start.enclave.id, bed_.qe().target_info(),
                         net::channel_binding(channel.dh_public()));
  const auto quote = bed_.qe().generate_quote(report);
  ASSERT_TRUE(quote.has_value());
  AttestPayload payload;
  payload.session_name = "s";
  payload.quote = *quote;
  payload.token = start.token;
  ASSERT_TRUE(channel.attest(bed_.cas().identity(), payload).ok());
  ASSERT_TRUE(channel.get_config().ok());

  CasClient client(&bed_.network(),
                   CasClientConfig{.address = kServerAddress, .retry = {}});
  IntrospectRequest req;
  req.max_traces = 32;
  const IntrospectResponse resp = client.introspect(req);
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_NE(resp.metrics.find("\"attest_requests\""), std::string::npos)
      << resp.metrics;

  const auto find_trace =
      [&](const char* root) -> const TraceReport* {
    for (const TraceReport& t : resp.traces)
      for (const TraceReport::Phase& p : t.phases)
        if (p.depth == 0 && p.name == root) return &t;
    return nullptr;
  };
  const auto has_phase = [](const TraceReport& t, const char* name) {
    for (const TraceReport::Phase& p : t.phases)
      if (p.name == name) return true;
    return false;
  };

  // The attest trace: accept -> handshake crypto -> respond, >= 5 phases.
  const TraceReport* attest = find_trace("request_attest");
  ASSERT_NE(attest, nullptr) << "no request_attest trace in introspection";
  EXPECT_GE(attest->phases.size(), 5u);
  EXPECT_NE(attest->session_id, 0u);  // late-bound by the handshake
  EXPECT_GT(attest->duration_ns, 0);
  EXPECT_TRUE(has_phase(*attest, "queue_wait"));
  EXPECT_TRUE(has_phase(*attest, "quote_verify"));
  EXPECT_TRUE(has_phase(*attest, "respond"));
  for (const TraceReport::Phase& p : attest->phases) {
    EXPECT_GE(p.offset_ns, 0);
    EXPECT_LE(p.offset_ns + p.duration_ns, attest->duration_ns);
  }

  // The config fetch rides the attested session: its own trace, with the
  // record decrypt/encrypt and serve phases attributed.
  const TraceReport* config = find_trace("request_get_config");
  ASSERT_NE(config, nullptr);
  EXPECT_GE(config->phases.size(), 4u);
  EXPECT_TRUE(has_phase(*config, "record_open"));
  EXPECT_TRUE(has_phase(*config, "config_serve"));
  EXPECT_TRUE(has_phase(*config, "record_seal"));
  EXPECT_EQ(config->session_id, attest->session_id);

  // The instance retrieval the starter performed is there too.
  EXPECT_NE(find_trace("request_get_instance"), nullptr);
}

// Satellite: the ServerMetrics mirror of SecureServer::Stats used to go
// stale until refresh_secure_metrics() was called by hand; a registry
// snapshot must now refresh it implicitly.
TEST_F(ObsIntrospectionTest, SecureMetricsMirrorAutoRefreshesAtSnapshot) {
  server::CasServer server(&bed_.cas(), server::CasServerConfig{.workers = 1});
  server.bind(bed_.network(), kServerAddress);

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), kServerAddress, image_, signed_.sigstruct,
      "s");
  ASSERT_TRUE(start.ok()) << start.error;
  AttestedChannel channel(&bed_.network(), kServerAddress,
                          crypto::Drbg::from_seed(18, "obs-mirror"));
  const sgx::Report report =
      bed_.cpu().ereport(start.enclave.id, bed_.qe().target_info(),
                         net::channel_binding(channel.dh_public()));
  const auto quote = bed_.qe().generate_quote(report);
  ASSERT_TRUE(quote.has_value());
  AttestPayload payload;
  payload.session_name = "s";
  payload.quote = *quote;
  payload.token = start.token;
  ASSERT_TRUE(channel.attest(bed_.cas().identity(), payload).ok());

  // No refresh_secure_metrics() call anywhere on this path.
  const obs::MetricsSnapshot snap = bed_.cas().metrics_registry().snapshot();
  const auto* opened = snap.find("secure_sessions_opened");
  ASSERT_NE(opened, nullptr);
  EXPECT_GE(opened->value, 1u);
  EXPECT_EQ(server.metrics().secure_sessions_opened.load(), opened->value);
  // The policy store surfaces through the same collector.
  EXPECT_NE(snap.find("policy_cache_hits"), nullptr);
}

// Satellite: the legacy-vs-envelope split of the SECURE endpoint, counted
// past the encryption boundary (the serving layer only sees ciphertext).
TEST_F(ObsIntrospectionTest, SecureEndpointCountsLegacyVersusEnvelope) {
  server::CasServer server(&bed_.cas(), server::CasServerConfig{.workers = 1});
  server.bind(bed_.network(), kServerAddress);
  const CasService::SecureFrameStats before = bed_.cas().secure_frame_stats();

  // Session 1: the v1 SDK path — enveloped attest, enveloped config.
  const auto start1 = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), kServerAddress, image_, signed_.sigstruct,
      "s");
  ASSERT_TRUE(start1.ok()) << start1.error;
  AttestedChannel channel(&bed_.network(), kServerAddress,
                          crypto::Drbg::from_seed(19, "obs-envelope"));
  const sgx::Report report1 =
      bed_.cpu().ereport(start1.enclave.id, bed_.qe().target_info(),
                         net::channel_binding(channel.dh_public()));
  const auto quote1 = bed_.qe().generate_quote(report1);
  ASSERT_TRUE(quote1.has_value());
  AttestPayload p1;
  p1.session_name = "s";
  p1.quote = *quote1;
  p1.token = start1.token;
  ASSERT_TRUE(channel.attest(bed_.cas().identity(), p1).ok());
  ASSERT_TRUE(channel.get_config().ok());

  // Session 2: a seed-era peer — the raw AttestPayload, no envelope.
  const auto start2 = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), kServerAddress, image_, signed_.sigstruct,
      "s");
  ASSERT_TRUE(start2.ok()) << start2.error;
  net::SecureClient legacy(crypto::Drbg::from_seed(20, "obs-legacy"));
  const sgx::Report report2 =
      bed_.cpu().ereport(start2.enclave.id, bed_.qe().target_info(),
                         net::channel_binding(legacy.dh_public()));
  const auto quote2 = bed_.qe().generate_quote(report2);
  ASSERT_TRUE(quote2.has_value());
  AttestPayload p2;
  p2.session_name = "s";
  p2.quote = *quote2;
  p2.token = start2.token;
  ASSERT_TRUE(legacy
                  .connect(bed_.network().connect(kServerAddress),
                           bed_.cas().identity(), p2.serialize())
                  .has_value());

  const CasService::SecureFrameStats after = bed_.cas().secure_frame_stats();
  EXPECT_EQ(after.attest_envelope, before.attest_envelope + 1);
  EXPECT_EQ(after.attest_legacy, before.attest_legacy + 1);
  EXPECT_EQ(after.config_envelope, before.config_envelope + 1);
  EXPECT_EQ(after.config_legacy, before.config_legacy);

  // The classification reaches the serving layer's per-command metrics —
  // the documented legacy_frames gap — via the registry snapshot.
  const obs::MetricsSnapshot snap = bed_.cas().metrics_registry().snapshot();
  const auto* legacy_attests = snap.find("attest_legacy_frames");
  ASSERT_NE(legacy_attests, nullptr);
  EXPECT_GE(legacy_attests->value, 1u);
  EXPECT_GE(server.metrics().attest.legacy_frames.load(), 1u);
}

}  // namespace
}  // namespace sinclave::cas
