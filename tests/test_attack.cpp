// The paper's §3 attack, reproduced end to end — and §4's defense.
//
// Scenario: a user deploys an interpreter-style enclave ("victim image")
// whose behaviour is decided entirely by unmeasured configuration. The
// adversary controls the host: they can start the victim enclave with any
// configuration source, clone volumes, and run arbitrary untrusted
// software (the TEE impersonator). The user's CAS holds the secrets.
//
//   * Against the BASELINE flow the attack must SUCCEED (stealing the
//     user's secrets without ever running the attested code path).
//   * Against the SINCLAVE flow every variant of the attack must FAIL,
//     with the precise rejection the design predicts.
#include <gtest/gtest.h>

#include "attack/impersonator.h"
#include "attack/report_server.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

namespace sinclave {
namespace {

using runtime::RuntimeMode;

class AttackTest : public ::testing::Test {
 protected:
  static constexpr const char* kReportServerAddr = "attacker.report-server";

  AttackTest()
      : bed_(workload::TestbedConfig{.seed = 99, .rsa_bits = 1024}),
        victim_image_(core::EnclaveImage::synthetic(
            "python-interpreter", 4 * sgx::kPageSize, 8 * sgx::kPageSize)),
        attacker_rng_(bed_.child_rng("attacker")) {
    // The interpreter image can run any registered program — including,
    // fatally, the attacker's report server.
    attack::register_report_server(bed_.programs());
    bed_.programs().register_program("user-app", [](runtime::AppContext& ctx) {
      ctx.output = "user app doing user things";
      return 0;
    });

    // The attacker operates their own verifier (trivially possible: CAS is
    // just software; only the *user's* CAS holds the user's secrets).
    attacker_cas_ = std::make_unique<cas::CasService>(
        &bed_.attestation(),
        crypto::RsaKeyPair::generate(attacker_rng_, 1024),
        bed_.child_rng("attacker-cas"));
    attacker_cas_->add_signer_key(bed_.user_signer());
    attacker_cas_->bind(bed_.network(), "cas.attacker");
  }

  /// User-side deployment: install the victim session on the user's CAS.
  void deploy_user_session(bool sinclave) {
    const core::Signer signer(&bed_.user_signer());
    cas::Policy policy;
    policy.session_name = "victim-session";
    policy.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    policy.config.program = "user-app";
    policy.config.secrets["db-password"] = to_bytes("hunter2");

    if (sinclave) {
      const core::SinclaveSignedImage si = signer.sign_sinclave(victim_image_);
      user_sigstruct_ = si.sigstruct;
      policy.require_singleton = true;
      policy.base_hash = si.base_hash;
    } else {
      const core::SignedImage si = signer.sign_baseline(victim_image_);
      user_sigstruct_ = si.sigstruct;
      policy.expected_mr_enclave = si.sigstruct.enclave_hash;
    }
    bed_.cas().install_policy(policy);
  }

  /// Attacker-side: configure *their* CAS to turn the victim enclave into
  /// a report server (baseline world: sessions are attacker-installable on
  /// the attacker's own verifier; the enclave can't tell verifiers apart).
  void install_attacker_report_server_policy() {
    cas::Policy policy;
    policy.session_name = "coerced-session";
    policy.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    policy.expected_mr_enclave = user_sigstruct_.enclave_hash;
    policy.config.program = attack::kReportServerProgram;
    policy.config.args = {kReportServerAddr};
    attacker_cas_->install_policy(policy);
  }

  /// Boot the victim enclave as a report server via the attacker's CAS.
  bool boot_report_server(RuntimeMode victim_runtime_mode) {
    const auto enclave =
        runtime::start_enclave(bed_.cpu(), victim_image_, user_sigstruct_);
    if (!enclave.ok()) return false;
    auto rt = bed_.make_runtime(victim_runtime_mode);
    runtime::RunOptions o;
    o.cas_address = "cas.attacker";
    o.cas_identity = attacker_cas_->identity();
    o.session_name = "coerced-session";
    last_boot_ = rt.run(enclave, o);
    return last_boot_.ok;
  }

  workload::Testbed bed_;
  core::EnclaveImage victim_image_;
  crypto::Drbg attacker_rng_;
  std::unique_ptr<cas::CasService> attacker_cas_;
  sgx::SigStruct user_sigstruct_;
  runtime::RunResult last_boot_;
};

// ---------------------------------------------------------------------------
// Phase 1: the attack SUCCEEDS against the baseline (§3.3)
// ---------------------------------------------------------------------------

TEST_F(AttackTest, BaselineEnclaveAcceptsAttackerConfiguration) {
  deploy_user_session(/*sinclave=*/false);
  install_attacker_report_server_policy();
  // The baseline runtime happily fetches config from the attacker's CAS:
  // nothing about the verifier is measured.
  EXPECT_TRUE(boot_report_server(RuntimeMode::kBaseline)) << last_boot_.error;
  EXPECT_TRUE(bed_.network().has_listener(kReportServerAddr));
}

TEST_F(AttackTest, ReportServerSignsArbitraryReportData) {
  deploy_user_session(false);
  install_attacker_report_server_policy();
  ASSERT_TRUE(boot_report_server(RuntimeMode::kBaseline));

  sgx::ReportData chosen;
  for (std::size_t i = 0; i < 64; ++i)
    chosen.data[i] = static_cast<std::uint8_t>(i);
  const sgx::Report report = attack::request_report(
      bed_.network(), kReportServerAddr, bed_.qe().target_info(), chosen);

  // The report carries the VICTIM's genuine measurement with the
  // ATTACKER's report data, and it quotes successfully.
  EXPECT_EQ(report.identity.mr_enclave, user_sigstruct_.enclave_hash);
  EXPECT_EQ(report.report_data, chosen);
  EXPECT_TRUE(bed_.qe().generate_quote(report).has_value());
}

TEST_F(AttackTest, FullBypassStealsSecretsFromBaseline) {
  deploy_user_session(false);
  install_attacker_report_server_policy();
  ASSERT_TRUE(boot_report_server(RuntimeMode::kBaseline));

  attack::TeeImpersonator impersonator(&bed_.network(), &bed_.qe(),
                                       kReportServerAddr,
                                       bed_.child_rng("imp"));
  const auto attempt = impersonator.steal_config(
      bed_.cas_address(), bed_.cas().identity(), "victim-session");

  ASSERT_TRUE(attempt.succeeded()) << attempt.failure;
  EXPECT_EQ(attempt.stolen_config->secrets.at("db-password"),
            to_bytes("hunter2"));
  // The user's CAS believed everything was fine.
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kOk);
}

TEST_F(AttackTest, StolenQuoteWithoutChannelBindingRejected) {
  // A *captured* legitimate quote (bound to someone else's channel key)
  // replayed by the impersonator must fail: the REPORTDATA commits to the
  // DH key of the session it was minted for. This is why the attack needs
  // a report server rather than passive quote theft.
  deploy_user_session(false);
  install_attacker_report_server_policy();
  ASSERT_TRUE(boot_report_server(RuntimeMode::kBaseline));

  // Mint a quote bound to a DIFFERENT channel key (data chosen freely,
  // but not matching the impersonator's handshake key).
  sgx::ReportData foreign_binding;
  foreign_binding.data[0] = 0xcc;
  const sgx::Report report = attack::request_report(
      bed_.network(), kReportServerAddr, bed_.qe().target_info(),
      foreign_binding);
  const auto quote = bed_.qe().generate_quote(report);
  ASSERT_TRUE(quote.has_value());

  // Hand-drive the handshake with that mismatched quote.
  net::SecureClient client(bed_.child_rng("replayer"));
  cas::AttestPayload payload;
  payload.session_name = "victim-session";
  payload.quote = *quote;
  const auto accepted =
      client.connect(bed_.network().connect(bed_.cas_address()),
                     bed_.cas().identity(), payload.serialize());
  EXPECT_FALSE(accepted.has_value());
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kPolicyViolation);
}

TEST_F(AttackTest, ImpersonatorAloneCannotForgeQuotes) {
  // Sanity: without the report server the impersonator fails — the attack
  // genuinely needs the coerced enclave (reports are hardware-MACed).
  deploy_user_session(false);
  attack::TeeImpersonator impersonator(&bed_.network(), &bed_.qe(),
                                       "nothing-listening",
                                       bed_.child_rng("imp2"));
  const auto attempt = impersonator.steal_config(
      bed_.cas_address(), bed_.cas().identity(), "victim-session");
  EXPECT_FALSE(attempt.succeeded());
  EXPECT_EQ(attempt.failure, "report-server-unreachable");
}

TEST_F(AttackTest, DynamicModuleLoadingIsAnEquivalentVector) {
  // §3.2's second vector: not an interpreter, but a fixed server binary
  // with dynamic module loading (Apache httpd modules, NGINX dynamic
  // modules). The *server* program is benign; which module it loads comes
  // from unmeasured configuration — the adversary loads the report server
  // as a "module".
  deploy_user_session(false);

  // The benign server's extension point: load the configured optional
  // module by name (mod_deflate, mod_ssl, ...). The module "registry" is
  // the program registry — dynamically loaded code runs with the server's
  // full privileges, report API included.
  const runtime::ProgramRegistry* registry = &bed_.programs();
  bed_.programs().register_program(
      "web-server", [registry](runtime::AppContext& ctx) -> int {
        const auto module_it = ctx.config->env.find("LoadModule");
        if (module_it == ctx.config->env.end()) {
          ctx.output = "serving without modules";
          return 0;
        }
        const runtime::Program* module = registry->find(module_it->second);
        if (module == nullptr) return 1;
        return (*module)(ctx);  // dynamic code runs inside the enclave
      });

  cas::Policy coerced;
  coerced.session_name = "coerced-module";
  coerced.expected_signer =
      crypto::sha256(bed_.user_signer().public_key().modulus_be());
  coerced.expected_mr_enclave = user_sigstruct_.enclave_hash;
  coerced.config.program = "web-server";
  coerced.config.env["LoadModule"] = attack::kReportServerProgram;
  coerced.config.args = {kReportServerAddr};
  attacker_cas_->install_policy(coerced);

  const auto enclave =
      runtime::start_enclave(bed_.cpu(), victim_image_, user_sigstruct_);
  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  runtime::RunOptions o;
  o.cas_address = "cas.attacker";
  o.cas_identity = attacker_cas_->identity();
  o.session_name = "coerced-module";
  ASSERT_TRUE(rt.run(enclave, o).ok);

  // The "web server" now answers report requests; full bypass follows.
  attack::TeeImpersonator impersonator(&bed_.network(), &bed_.qe(),
                                       kReportServerAddr,
                                       bed_.child_rng("imp-mod"));
  const auto attempt = impersonator.steal_config(
      bed_.cas_address(), bed_.cas().identity(), "victim-session");
  ASSERT_TRUE(attempt.succeeded()) << attempt.failure;
  EXPECT_EQ(attempt.stolen_config->secrets.at("db-password"),
            to_bytes("hunter2"));
}

// ---------------------------------------------------------------------------
// Phase 2: every attack variant FAILS against SinClave (§4.4)
// ---------------------------------------------------------------------------

TEST_F(AttackTest, SinclaveRuntimeRefusesAttackerConfiguration) {
  // Variant (a): boot the common enclave against the attacker's CAS. The
  // SinClave runtime refuses: a common enclave never takes configuration.
  deploy_user_session(/*sinclave=*/true);
  install_attacker_report_server_policy();
  EXPECT_FALSE(boot_report_server(RuntimeMode::kSinclave));
  EXPECT_TRUE(last_boot_.error.starts_with("singleton:")) << last_boot_.error;
  EXPECT_FALSE(bed_.network().has_listener(kReportServerAddr));
}

TEST_F(AttackTest, SinclaveSingletonOnlyTalksToItsVerifier) {
  // Variant (b): the attacker obtains a legitimate token+SigStruct from
  // the USER's CAS, then tries to point the singleton at the attacker CAS
  // to deliver the report-server config. The runtime refuses: the verifier
  // identity in the instance page does not match.
  deploy_user_session(true);
  install_attacker_report_server_policy();

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), victim_image_,
      user_sigstruct_, "victim-session");
  ASSERT_TRUE(start.ok()) << start.error;

  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  runtime::RunOptions o;
  o.cas_address = "cas.attacker";
  o.cas_identity = attacker_cas_->identity();
  o.session_name = "coerced-session";
  const auto result = rt.run(start.enclave, o);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with(
      "singleton: refusing to talk to unexpected verifier"))
      << result.error;
}

TEST_F(AttackTest, SinclaveCommonEnclaveQuoteRejectedByCas) {
  // Variant (c): suppose the attacker somehow ran a report server in the
  // COMMON enclave (e.g. a hypothetical runtime bug). Its quote still
  // fails at the user's CAS: common MRENCLAVE != any expected singleton
  // measurement, and there is no valid token.
  deploy_user_session(true);
  install_attacker_report_server_policy();
  // Force the report server via the attacker CAS using a BASELINE runtime
  // (modelling a patched/buggy runtime — which would also change
  // MRENCLAVE in reality; this is the attacker's best case).
  ASSERT_TRUE(boot_report_server(RuntimeMode::kBaseline));

  attack::TeeImpersonator impersonator(&bed_.network(), &bed_.qe(),
                                       kReportServerAddr,
                                       bed_.child_rng("imp3"));

  // Without a token: rejected outright.
  auto attempt = impersonator.steal_config(
      bed_.cas_address(), bed_.cas().identity(), "victim-session");
  EXPECT_FALSE(attempt.succeeded());
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kTokenUnknown);

  // With a fresh legitimate token: the quote's MRENCLAVE (common enclave)
  // does not match the token's expected singleton measurement.
  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), victim_image_,
      user_sigstruct_, "victim-session");
  ASSERT_TRUE(start.ok());
  attempt = impersonator.steal_config(bed_.cas_address(),
                                      bed_.cas().identity(), "victim-session",
                                      start.token);
  EXPECT_FALSE(attempt.succeeded());
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kMeasurementMismatch);
}

TEST_F(AttackTest, SinclaveTokenCannotBeReused) {
  // Variant (d): replaying the token of a singleton that already attested
  // ("reuse attack" in its purest form).
  deploy_user_session(true);

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), victim_image_,
      user_sigstruct_, "victim-session");
  ASSERT_TRUE(start.ok());

  // Legitimate first attestation consumes the token.
  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  runtime::RunOptions o;
  o.cas_address = bed_.cas_address();
  o.cas_identity = bed_.cas().identity();
  o.session_name = "victim-session";
  ASSERT_TRUE(rt.run(start.enclave, o).ok);

  // Now a replay with the very same (once-valid) token.
  install_attacker_report_server_policy();
  ASSERT_TRUE(boot_report_server(RuntimeMode::kBaseline));
  attack::TeeImpersonator impersonator(&bed_.network(), &bed_.qe(),
                                       kReportServerAddr,
                                       bed_.child_rng("imp4"));
  const auto attempt =
      impersonator.steal_config(bed_.cas_address(), bed_.cas().identity(),
                                "victim-session", start.token);
  EXPECT_FALSE(attempt.succeeded());
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kTokenReused);
}

TEST_F(AttackTest, SinclavePatchedImageRejectedAtTokenIssuance) {
  // Variant (e): the attacker patches the runtime inside the image to
  // remove the singleton checks, then asks the user's CAS for a token.
  // The patched image has a different base enclave -> refused.
  deploy_user_session(true);
  core::EnclaveImage patched = victim_image_;
  patched.code[100] ^= 0xff;
  const core::Signer signer(&bed_.user_signer());
  const auto patched_signed = signer.sign_sinclave(patched);

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), patched,
      patched_signed.sigstruct, "victim-session");
  EXPECT_FALSE(start.ok());
  EXPECT_NE(start.error.find("does not match session base hash"),
            std::string::npos)
      << start.error;
}

TEST_F(AttackTest, LegitimateUserUnaffectedBySinclave) {
  // The defense must not break the honest path.
  deploy_user_session(true);
  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), victim_image_,
      user_sigstruct_, "victim-session");
  ASSERT_TRUE(start.ok()) << start.error;
  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  runtime::RunOptions o;
  o.cas_address = bed_.cas_address();
  o.cas_identity = bed_.cas().identity();
  o.session_name = "victim-session";
  const auto result = rt.run(start.enclave, o);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program_output, "user app doing user things");
}

}  // namespace
}  // namespace sinclave
