// Unit + property tests for the symmetric crypto substrate: SHA-256 (both
// variants, including the interruptible state export that implements the
// paper's base enclave hash), HMAC, HKDF, DRBG, AES, AEAD.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/error.h"
#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha256_fast.h"

namespace sinclave::crypto {
namespace {

// --- SHA-256 known-answer tests (FIPS 180-4 / NIST CAVP vectors) ---

struct ShaVector {
  const char* message;
  const char* digest_hex;
};

const ShaVector kShaVectors[] = {
    {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
    {"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
    {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
    {"The quick brown fox jumps over the lazy dog",
     "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"},
};

class Sha256Vectors : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256Vectors, InterruptibleMatchesStandard) {
  const auto& v = GetParam();
  EXPECT_EQ(sha256(to_bytes(v.message)).hex(), v.digest_hex);
}

TEST_P(Sha256Vectors, FastMatchesStandard) {
  const auto& v = GetParam();
  EXPECT_EQ(sha256_fast(to_bytes(v.message)).hex(), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(Kat, Sha256Vectors, ::testing::ValuesIn(kShaVectors));

TEST(Sha256, MillionA) {
  // Classic FIPS long test: 1,000,000 repetitions of 'a'.
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Property: chunked updates produce the same digest as a single update,
// for both implementations, across many split points.
class Sha256Chunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Chunking, SplitInvariance) {
  const std::size_t split = GetParam();
  Bytes msg(257);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i * 31 + 7);

  const Hash256 expect = sha256(msg);
  if (split > msg.size()) return;

  Sha256 a;
  a.update(ByteView{msg.data(), split});
  a.update(ByteView{msg.data() + split, msg.size() - split});
  EXPECT_EQ(a.finalize(), expect);

  Sha256Fast b;
  b.update(ByteView{msg.data(), split});
  b.update(ByteView{msg.data() + split, msg.size() - split});
  EXPECT_EQ(b.finalize(), expect);
}

INSTANTIATE_TEST_SUITE_P(Splits, Sha256Chunking,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 128, 200, 256,
                                           257));

// Property: both implementations agree on random messages of many lengths.
class Sha256Agreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Agreement, FastEqualsInterruptible) {
  Drbg rng = Drbg::from_seed(GetParam(), "sha-agreement");
  const Bytes msg = rng.generate(GetParam());
  EXPECT_EQ(sha256(msg), sha256_fast(msg));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256Agreement,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 127, 128, 1000, 4096, 10000));

// --- The paper's core primitive: interruptible state export/resume ---

TEST(Sha256Interruptible, ExportResumeEqualsOneShot) {
  Bytes msg(640);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i);

  Sha256 first;
  first.update(ByteView{msg.data(), 256});
  ASSERT_TRUE(first.exportable());
  const Sha256State mid = first.export_state();

  // The state travels (e.g. signer -> verifier) as 44 bytes...
  const Bytes wire = mid.encode();
  EXPECT_EQ(wire.size(), 44u);
  const Sha256State decoded = Sha256State::decode(wire);
  EXPECT_EQ(decoded, mid);

  // ...and the verifier resumes and finishes the computation.
  Sha256 second = Sha256::resume(decoded);
  second.update(ByteView{msg.data() + 256, msg.size() - 256});
  EXPECT_EQ(second.finalize(), sha256(msg));
}

TEST(Sha256Interruptible, ExportRequiresBlockAlignment) {
  Sha256 h;
  h.update(to_bytes("short"));
  EXPECT_FALSE(h.exportable());
  EXPECT_THROW(h.export_state(), Error);
}

TEST(Sha256Interruptible, ExportAtEveryBlockBoundary) {
  Bytes msg(64 * 8);
  Drbg rng = Drbg::from_seed(1, "block-boundaries");
  rng.generate(msg.data(), msg.size());
  const Hash256 expect = sha256(msg);

  for (std::size_t blocks = 0; blocks <= 8; ++blocks) {
    Sha256 a;
    a.update(ByteView{msg.data(), blocks * 64});
    Sha256 b = Sha256::resume(a.export_state());
    b.update(ByteView{msg.data() + blocks * 64, msg.size() - blocks * 64});
    EXPECT_EQ(b.finalize(), expect) << "boundary " << blocks;
  }
}

TEST(Sha256Interruptible, DecodeRejectsGarbage) {
  EXPECT_THROW(Sha256State::decode(Bytes(44, 0)), ParseError);
  Sha256 h;
  Bytes wire = h.export_state().encode();
  wire[36] = 3;  // low byte of the length counter -> unaligned byte_count
  EXPECT_THROW(Sha256State::decode(wire), ParseError);
  wire.pop_back();
  EXPECT_THROW(Sha256State::decode(wire), ParseError);
}

TEST(Sha256Interruptible, UseAfterFinalizeThrows) {
  Sha256 h;
  h.update(to_bytes("x"));
  (void)h.finalize();
  EXPECT_THROW(h.update(to_bytes("y")), Error);
  EXPECT_THROW(h.finalize(), Error);
  EXPECT_THROW(h.export_state(), Error);
}

TEST(Sha256Interruptible, ByteCountTracksMessageOnly) {
  Sha256 h;
  h.update(Bytes(130, 0));
  EXPECT_EQ(h.byte_count(), 130u);
}

// --- HMAC (RFC 4231 vectors) ---

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(mac.hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac = hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(mac.hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(mac.hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, StreamingEqualsOneShot) {
  const Bytes key = to_bytes("streaming-key");
  const Bytes msg = to_bytes("part one|part two|part three");
  HmacSha256 h(key);
  h.update(to_bytes("part one|"));
  h.update(to_bytes("part two|"));
  h.update(to_bytes("part three"));
  EXPECT_EQ(h.finalize(), hmac_sha256(key, msg));
}

TEST(Hmac, TruncatedVariant) {
  const Bytes key = to_bytes("k");
  const auto full = hmac_sha256(key, to_bytes("m"));
  const auto trunc = hmac_sha256_128(key, to_bytes("m"));
  EXPECT_TRUE(ct_equal(trunc.view(), ByteView{full.data.data(), 16}));
}

// --- HKDF (RFC 5869 test case 1) ---

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandLengthLimit) {
  const Bytes prk(32, 1);
  EXPECT_NO_THROW(hkdf_expand(prk, {}, 255 * 32));
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), Error);
}

TEST(Hkdf, DistinctInfoDistinctKeys) {
  const Bytes ikm(32, 7);
  EXPECT_NE(hkdf({}, ikm, to_bytes("a"), 32), hkdf({}, ikm, to_bytes("b"), 32));
}

// --- DRBG ---

TEST(Drbg, DeterministicAcrossInstances) {
  Drbg a = Drbg::from_seed(42, "test");
  Drbg b = Drbg::from_seed(42, "test");
  EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(Drbg, PersonalizationSeparatesStreams) {
  Drbg a = Drbg::from_seed(42, "alpha");
  Drbg b = Drbg::from_seed(42, "beta");
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a = Drbg::from_seed(42);
  Drbg b = Drbg::from_seed(42);
  b.reseed(to_bytes("extra"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, UniformStaysBelowBound) {
  Drbg rng = Drbg::from_seed(7);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Drbg, UniformZeroBoundThrows) {
  Drbg rng = Drbg::from_seed(7);
  EXPECT_THROW(rng.uniform(0), Error);
}

TEST(Drbg, UniformCoversRange) {
  Drbg rng = Drbg::from_seed(11);
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[rng.uniform(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

// --- AES (FIPS 197 appendix vectors) ---

TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteView{ct, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteView{ct, 16}), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(17, 0)), Error);
  EXPECT_THROW(Aes(Bytes(24, 0)), Error);  // AES-192 intentionally unsupported
}

TEST(AesCtr, XorIsInvolution) {
  Drbg rng = Drbg::from_seed(3);
  const Bytes key = rng.generate(32);
  const Bytes nonce = rng.generate(12);
  const Bytes msg = rng.generate(1000);
  const Aes aes(key);

  Bytes ct(msg.size());
  aes_ctr_xor(aes, nonce, 0, msg, ct.data());
  EXPECT_NE(ct, msg);
  Bytes back(msg.size());
  aes_ctr_xor(aes, nonce, 0, ct, back.data());
  EXPECT_EQ(back, msg);
}

TEST(AesCtr, CounterOffsetIsStreamSeek) {
  // Keystream starting at counter 2 must equal the tail of the keystream
  // starting at counter 0 — CTR counters address absolute block positions.
  const Aes aes(Bytes(32, 9));
  const Bytes nonce(12, 1);
  Bytes s0(48, 0), s2(16, 0);
  aes_ctr_xor(aes, nonce, 0, Bytes(48, 0), s0.data());
  aes_ctr_xor(aes, nonce, 2, Bytes(16, 0), s2.data());
  EXPECT_EQ(Bytes(s0.begin() + 32, s0.end()), s2);
}

// --- AEAD ---

TEST(Aead, SealOpenRoundTrip) {
  Drbg rng = Drbg::from_seed(5);
  const Aead aead(rng.generate(32));
  const Bytes nonce = rng.generate(12);
  const Bytes msg = to_bytes("attested configuration payload");
  const Bytes ad = to_bytes("session-17");

  const Bytes sealed = aead.seal(nonce, msg, ad);
  EXPECT_EQ(sealed.size(), msg.size() + kAeadTagSize);
  const auto opened = aead.open(nonce, sealed, ad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(Aead, DetectsCiphertextTampering) {
  Drbg rng = Drbg::from_seed(6);
  const Aead aead(rng.generate(32));
  const Bytes nonce = rng.generate(12);
  Bytes sealed = aead.seal(nonce, to_bytes("secret"), {});
  sealed[0] ^= 1;
  EXPECT_FALSE(aead.open(nonce, sealed, {}).has_value());
}

TEST(Aead, DetectsTagTampering) {
  Drbg rng = Drbg::from_seed(6);
  const Aead aead(rng.generate(32));
  const Bytes nonce = rng.generate(12);
  Bytes sealed = aead.seal(nonce, to_bytes("secret"), {});
  sealed.back() ^= 1;
  EXPECT_FALSE(aead.open(nonce, sealed, {}).has_value());
}

TEST(Aead, DetectsAssociatedDataMismatch) {
  Drbg rng = Drbg::from_seed(6);
  const Aead aead(rng.generate(32));
  const Bytes nonce = rng.generate(12);
  const Bytes sealed = aead.seal(nonce, to_bytes("secret"), to_bytes("ad-1"));
  EXPECT_FALSE(aead.open(nonce, sealed, to_bytes("ad-2")).has_value());
}

TEST(Aead, DetectsNonceMismatch) {
  Drbg rng = Drbg::from_seed(6);
  const Aead aead(rng.generate(32));
  const Bytes sealed = aead.seal(Bytes(12, 1), to_bytes("secret"), {});
  EXPECT_FALSE(aead.open(Bytes(12, 2), sealed, {}).has_value());
}

TEST(Aead, RejectsTooShortCiphertext) {
  const Aead aead(Bytes(32, 3));
  EXPECT_FALSE(aead.open(Bytes(12, 0), Bytes(8, 0), {}).has_value());
}

TEST(Aead, EmptyPlaintextStillAuthenticated) {
  const Aead aead(Bytes(32, 4));
  const Bytes nonce(12, 7);
  const Bytes sealed = aead.seal(nonce, {}, to_bytes("ad"));
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  EXPECT_TRUE(aead.open(nonce, sealed, to_bytes("ad")).has_value());
  EXPECT_FALSE(aead.open(nonce, sealed, to_bytes("xx")).has_value());
}

TEST(Aead, DistinctKeysCannotOpen) {
  const Aead a(Bytes(32, 1));
  const Aead b(Bytes(32, 2));
  const Bytes nonce(12, 0);
  const Bytes sealed = a.seal(nonce, to_bytes("m"), {});
  EXPECT_FALSE(b.open(nonce, sealed, {}).has_value());
}

// --- DrbgPool ---

TEST(DrbgPool, SingleThreadedDrawsAreDeterministic) {
  // Round-robin stripe choice: with no contention the k-th lease lands on
  // stripe k mod N, so two pools forked from the same root produce the
  // same sequence — seeded tests stay reproducible through the pool.
  DrbgPool a(Drbg::from_seed(9, "pool"), "label", 4);
  DrbgPool b(Drbg::from_seed(9, "pool"), "label", 4);
  for (int i = 0; i < 12; ++i) {
    const Bytes from_a = a.lease().rng().generate(16);
    EXPECT_EQ(from_a, b.lease().rng().generate(16));
  }
  EXPECT_EQ(a.collisions(), 0u);
}

TEST(DrbgPool, StripesAreIndependentGenerators) {
  DrbgPool pool(Drbg::from_seed(10, "pool"), "label", 4);
  // Four consecutive leases visit four distinct stripes; their outputs
  // must all differ (each stripe is domain-separated from the others).
  std::vector<Bytes> draws;
  for (int i = 0; i < 4; ++i)
    draws.push_back(pool.lease().rng().generate(32));
  for (std::size_t i = 0; i < draws.size(); ++i)
    for (std::size_t j = i + 1; j < draws.size(); ++j)
      EXPECT_NE(draws[i], draws[j]);
}

TEST(DrbgPool, ConcurrentLeasesYieldDistinctBytes) {
  DrbgPool pool(Drbg::from_seed(11, "pool"), "label", 4);
  constexpr int kThreads = 8;
  constexpr int kDrawsPerThread = 50;
  std::vector<std::vector<Bytes>> out(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kDrawsPerThread; ++i)
        out[static_cast<std::size_t>(t)].push_back(
            pool.lease().rng().generate(32));
    });
  for (auto& t : threads) t.join();
  // A DRBG never repeats 32-byte outputs; across stripes the domain
  // separation guarantees the same. Any duplicate means two threads tore
  // one generator's state.
  std::set<Bytes> seen;
  for (const auto& per_thread : out)
    for (const auto& draw : per_thread)
      EXPECT_TRUE(seen.insert(draw).second) << "duplicate DRBG output";
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kThreads * kDrawsPerThread));
}

}  // namespace
}  // namespace sinclave::crypto
