// End-to-end integration tests over the full stack (Testbed): baseline and
// SinClave attestation flows, configuration delivery, filesystem
// completeness enforcement, and singleton semantics.
#include <gtest/gtest.h>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

namespace sinclave {
namespace {

using runtime::RuntimeMode;
using workload::Testbed;
using workload::TestbedConfig;

/// Shared fixture: one platform, one victim image, a greeter program that
/// emits its secret (so tests can verify delivery end to end).
class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : bed_(TestbedConfig{.seed = 11, .rsa_bits = 1024}) {
    image_ = core::EnclaveImage::synthetic("victim-app", 2 * sgx::kPageSize,
                                           4 * sgx::kPageSize);
    bed_.programs().register_program("greeter", [](runtime::AppContext& ctx) {
      const auto it = ctx.config->secrets.find("greeting");
      if (it == ctx.config->secrets.end()) return 1;
      ctx.output = to_string(it->second);
      return 0;
    });
  }

  cas::Policy base_policy(const std::string& session) {
    cas::Policy p;
    p.session_name = session;
    p.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    p.config.program = "greeter";
    p.config.secrets["greeting"] = to_bytes("hello from " + session);
    return p;
  }

  runtime::RunOptions options(const std::string& session) {
    runtime::RunOptions o;
    o.cas_address = bed_.cas_address();
    o.cas_identity = bed_.cas().identity();
    o.session_name = session;
    return o;
  }

  Testbed bed_;
  core::EnclaveImage image_;
};

// --- baseline flow ---

TEST_F(IntegrationTest, BaselineFlowDeliversConfig) {
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);

  cas::Policy policy = base_policy("s1");
  policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  bed_.cas().install_policy(policy);

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  ASSERT_TRUE(enclave.ok());
  const auto result = rt.run(enclave, options("s1"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program_output, "hello from s1");
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kOk);
}

TEST_F(IntegrationTest, BaselineRejectsWrongMeasurement) {
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);

  cas::Policy policy = base_policy("s2");
  sgx::Measurement wrong = si.sigstruct.enclave_hash;
  wrong.data[0] ^= 1;
  policy.expected_mr_enclave = wrong;
  bed_.cas().install_policy(policy);

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  const auto result = rt.run(enclave, options("s2"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kMeasurementMismatch);
}

TEST_F(IntegrationTest, BaselineRejectsForeignSigner) {
  // Enclave signed by someone other than the policy's signer.
  auto rng = bed_.child_rng("foreign");
  const auto foreign = crypto::RsaKeyPair::generate(rng, 1024);
  const core::Signer signer(&foreign);
  const core::SignedImage si = signer.sign_baseline(image_);

  cas::Policy policy = base_policy("s3");
  policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  bed_.cas().install_policy(policy);

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  const auto result = rt.run(enclave, options("s3"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kSignerMismatch);
}

TEST_F(IntegrationTest, BaselineRejectsDebugEnclaveByDefault) {
  core::EnclaveImage debug_image = image_;
  debug_image.attributes.flags |= sgx::Attributes::kDebug;
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(debug_image);

  cas::Policy policy = base_policy("s4");
  policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  bed_.cas().install_policy(policy);

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave =
      runtime::start_enclave(bed_.cpu(), debug_image, si.sigstruct);
  ASSERT_TRUE(enclave.ok());
  const auto result = rt.run(enclave, options("s4"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(bed_.cas().last_attest_verdict(), Verdict::kAttributesMismatch);
}

TEST_F(IntegrationTest, UnknownSessionRejected) {
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);
  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  const auto result = rt.run(enclave, options("never-installed"));
  EXPECT_FALSE(result.ok);
}

// --- SinClave singleton flow ---

TEST_F(IntegrationTest, SinclaveFlowDeliversConfig) {
  const core::Signer signer(&bed_.user_signer());
  const core::SinclaveSignedImage si = signer.sign_sinclave(image_);

  cas::Policy policy = base_policy("t1");
  policy.require_singleton = true;
  policy.base_hash = si.base_hash;
  bed_.cas().install_policy(policy);

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_, si.sigstruct,
      "t1");
  ASSERT_TRUE(start.ok()) << start.error;
  EXPECT_EQ(bed_.cas().tokens_outstanding(), 1u);

  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  const auto result = rt.run(start.enclave, options("t1"));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program_output, "hello from t1");
  EXPECT_EQ(bed_.cas().tokens_used(), 1u);
}

TEST_F(IntegrationTest, SingletonMeasurementIsUniquePerStart) {
  const core::Signer signer(&bed_.user_signer());
  const core::SinclaveSignedImage si = signer.sign_sinclave(image_);
  cas::Policy policy = base_policy("t2");
  policy.require_singleton = true;
  policy.base_hash = si.base_hash;
  bed_.cas().install_policy(policy);

  const auto a = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_, si.sigstruct, "t2");
  const auto b = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_, si.sigstruct, "t2");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(bed_.cpu().identity(a.enclave.id).mr_enclave,
            bed_.cpu().identity(b.enclave.id).mr_enclave);
  EXPECT_NE(a.token, b.token);
}

TEST_F(IntegrationTest, CommonEnclaveCannotAttestInSinclaveMode) {
  const core::Signer signer(&bed_.user_signer());
  const core::SinclaveSignedImage si = signer.sign_sinclave(image_);
  cas::Policy policy = base_policy("t3");
  policy.require_singleton = true;
  policy.base_hash = si.base_hash;
  bed_.cas().install_policy(policy);

  // Start the *common* enclave (zero instance page) with the common
  // SigStruct — allowed, but it must refuse to obtain configuration.
  const auto enclave =
      runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  ASSERT_TRUE(enclave.ok());
  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  const auto result = rt.run(enclave, options("t3"));
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with("singleton:")) << result.error;
}

TEST_F(IntegrationTest, RuntimeRefusesUnexpectedVerifier) {
  const core::Signer signer(&bed_.user_signer());
  const core::SinclaveSignedImage si = signer.sign_sinclave(image_);
  cas::Policy policy = base_policy("t4");
  policy.require_singleton = true;
  policy.base_hash = si.base_hash;
  bed_.cas().install_policy(policy);

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_, si.sigstruct, "t4");
  ASSERT_TRUE(start.ok());

  // Host claims a different verifier identity.
  auto rng = bed_.child_rng("evil-cas");
  const auto evil_identity = crypto::RsaKeyPair::generate(rng, 1024);
  runtime::RunOptions o = options("t4");
  o.cas_identity = evil_identity.public_key();

  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  const auto result = rt.run(start.enclave, o);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with(
      "singleton: refusing to talk to unexpected verifier"))
      << result.error;
}

TEST_F(IntegrationTest, EnclaveConfiguredOnlyOnce) {
  const core::Signer signer(&bed_.user_signer());
  const core::SinclaveSignedImage si = signer.sign_sinclave(image_);
  cas::Policy policy = base_policy("t5");
  policy.require_singleton = true;
  policy.base_hash = si.base_hash;
  bed_.cas().install_policy(policy);

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_, si.sigstruct, "t5");
  ASSERT_TRUE(start.ok());
  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  ASSERT_TRUE(rt.run(start.enclave, options("t5")).ok);
  const auto second = rt.run(start.enclave, options("t5"));
  EXPECT_FALSE(second.ok);
  EXPECT_TRUE(second.error.starts_with("start: enclave instance was already"))
      << second.error;
}

TEST_F(IntegrationTest, InstanceRequestRejectsForeignSigstruct) {
  const core::Signer signer(&bed_.user_signer());
  const core::SinclaveSignedImage si = signer.sign_sinclave(image_);
  cas::Policy policy = base_policy("t6");
  policy.require_singleton = true;
  policy.base_hash = si.base_hash;
  bed_.cas().install_policy(policy);

  // Attacker-modified image => different base enclave => CAS must refuse
  // to mint a token/SigStruct for it.
  core::EnclaveImage patched = image_;
  patched.code[0] ^= 1;
  const core::SinclaveSignedImage evil = signer.sign_sinclave(patched);
  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), patched, evil.sigstruct,
      "t6");
  EXPECT_FALSE(start.ok());
  EXPECT_NE(start.error.find("does not match session base hash"),
            std::string::npos)
      << start.error;
}

TEST_F(IntegrationTest, InstanceRequestRejectsBaselineSession) {
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);
  cas::Policy policy = base_policy("t7");
  policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  bed_.cas().install_policy(policy);

  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_, si.sigstruct, "t7");
  EXPECT_FALSE(start.ok());
}

// --- filesystem completeness ---

class VolumeIntegrationTest : public IntegrationTest {
 protected:
  VolumeIntegrationTest() {
    bed_.programs().register_program("reader", [](runtime::AppContext& ctx) {
      if (ctx.volume == nullptr) return 1;
      const auto content = ctx.volume->read_file("data.txt");
      if (!content.has_value()) return 2;
      ctx.output = to_string(*content);
      return 0;
    });
  }

  /// Install a baseline policy with an attached volume; returns host blobs.
  std::map<std::string, Bytes> setup(const std::string& session,
                                     const core::SignedImage& si) {
    auto rng = bed_.child_rng("vol-" + session);
    last_key_ = rng.generate(32);
    fs::EncryptedVolume volume(last_key_, bed_.child_rng("vol-rng-" + session));
    volume.write_file("data.txt", to_bytes("volume-content"));

    cas::Policy policy = base_policy(session);
    policy.expected_mr_enclave = si.sigstruct.enclave_hash;
    policy.config.program = "reader";
    policy.config.fs_key = last_key_;
    policy.config.fs_manifest_root = volume.manifest_root();
    bed_.cas().install_policy(policy);
    return volume.host_export();
  }

  Bytes last_key_;
};

TEST_F(VolumeIntegrationTest, VerifiedVolumeIsReadable) {
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);
  auto blobs = setup("v1", si);

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  runtime::RunOptions o = options("v1");
  o.volume_blobs = std::move(blobs);
  const auto result = rt.run(enclave, o);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.program_output, "volume-content");
}

TEST_F(VolumeIntegrationTest, TamperedVolumeRejected) {
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);
  auto blobs = setup("v2", si);
  blobs["data.txt"][16] ^= 1;  // host flips a ciphertext bit

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  runtime::RunOptions o = options("v2");
  o.volume_blobs = std::move(blobs);
  const auto result = rt.run(enclave, o);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with("volume:")) << result.error;
}

TEST_F(VolumeIntegrationTest, SwappedVolumeRejectedByManifest) {
  // A *consistent but different* volume encrypted under the same key: file
  // integrity passes, the manifest root must still catch it.
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);
  auto blobs = setup("v3", si);

  // Rebuild a second volume under the same key with different content.
  fs::EncryptedVolume other(last_key_, bed_.child_rng("other"));
  other.write_file("data.txt", to_bytes("evil-content"));

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  runtime::RunOptions o = options("v3");
  o.volume_blobs = other.host_export();
  const auto result = rt.run(enclave, o);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with("volume:")) << result.error;
}

TEST_F(VolumeIntegrationTest, MissingProgramReported) {
  const core::Signer signer(&bed_.user_signer());
  const core::SignedImage si = signer.sign_baseline(image_);
  cas::Policy policy = base_policy("v4");
  policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  policy.config.program = "does-not-exist";
  bed_.cas().install_policy(policy);

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const auto enclave = runtime::start_enclave(bed_.cpu(), image_, si.sigstruct);
  const auto result = rt.run(enclave, options("v4"));
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with("program: not found")) << result.error;
}

}  // namespace
}  // namespace sinclave
