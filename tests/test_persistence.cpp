// Tests for CAS state sealing and rollback protection — the durability
// half of the singleton guarantee: a CAS restart must not forget which
// tokens were consumed, and the adversarial host must not be able to roll
// the token database back to a pre-consumption snapshot.
#include <gtest/gtest.h>

#include "attack/impersonator.h"
#include "cas/persistence.h"
#include "cas/service.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

namespace sinclave::cas {
namespace {

// --- seal/unseal primitive ---

class SealTest : public ::testing::Test {
 protected:
  crypto::Drbg rng_ = crypto::Drbg::from_seed(61, "seal-tests");
  Bytes key_ = rng_.generate(32);
  MonotonicCounter counter_;
};

TEST_F(SealTest, RoundTrip) {
  const Bytes state = to_bytes("token-database-contents");
  const Bytes blob = seal_state(key_, counter_, state, rng_);
  Bytes out;
  EXPECT_EQ(unseal_state(key_, counter_, blob, out), UnsealStatus::kOk);
  EXPECT_EQ(out, state);
}

TEST_F(SealTest, SealAdvancesCounter) {
  EXPECT_EQ(counter_.read(), 0u);
  seal_state(key_, counter_, to_bytes("a"), rng_);
  EXPECT_EQ(counter_.read(), 1u);
  seal_state(key_, counter_, to_bytes("b"), rng_);
  EXPECT_EQ(counter_.read(), 2u);
}

TEST_F(SealTest, WrongKeyRejected) {
  const Bytes blob = seal_state(key_, counter_, to_bytes("s"), rng_);
  Bytes out;
  EXPECT_EQ(unseal_state(rng_.generate(32), counter_, blob, out),
            UnsealStatus::kBadSeal);
}

TEST_F(SealTest, TamperedBlobRejected) {
  Bytes blob = seal_state(key_, counter_, to_bytes("s"), rng_);
  blob.back() ^= 1;
  Bytes out;
  EXPECT_EQ(unseal_state(key_, counter_, blob, out), UnsealStatus::kBadSeal);
}

TEST_F(SealTest, MalformedBlobRejected) {
  Bytes out;
  EXPECT_EQ(unseal_state(key_, counter_, Bytes{1, 2}, out),
            UnsealStatus::kMalformed);
}

TEST_F(SealTest, StaleSnapshotRejected) {
  // The rollback attack: keep the older (authentic!) blob, present it
  // after a newer seal happened.
  const Bytes old_blob = seal_state(key_, counter_, to_bytes("old"), rng_);
  const Bytes new_blob = seal_state(key_, counter_, to_bytes("new"), rng_);

  Bytes out;
  EXPECT_EQ(unseal_state(key_, counter_, old_blob, out),
            UnsealStatus::kRolledBack);
  EXPECT_EQ(unseal_state(key_, counter_, new_blob, out), UnsealStatus::kOk);
  EXPECT_EQ(out, to_bytes("new"));
}

TEST_F(SealTest, CounterValueCannotBeForgedInBlob) {
  // Attacker rewrites the bound counter value in an old blob to the
  // current one: the AEAD associated data catches it.
  Bytes old_blob = seal_state(key_, counter_, to_bytes("old"), rng_);
  seal_state(key_, counter_, to_bytes("new"), rng_);
  // Counter field is the first u64 of the blob (little-endian).
  old_blob[0] = static_cast<std::uint8_t>(counter_.read());
  Bytes out;
  EXPECT_EQ(unseal_state(key_, counter_, old_blob, out),
            UnsealStatus::kBadSeal);
}

// --- full CAS restart + rollback scenario ---

class CasRestartTest : public ::testing::Test {
 protected:
  CasRestartTest()
      : bed_(workload::TestbedConfig{.seed = 62, .rsa_bits = 1024}),
        image_(core::EnclaveImage::synthetic("restart", sgx::kPageSize,
                                             sgx::kPageSize)) {
    bed_.programs().register_program("ok",
                                     [](runtime::AppContext&) { return 0; });
    const core::Signer signer(&bed_.user_signer());
    signed_image_ = signer.sign_sinclave(image_);

    Policy policy;
    policy.session_name = "restart-session";
    policy.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    policy.require_singleton = true;
    policy.base_hash = signed_image_.base_hash;
    policy.config.program = "ok";
    bed_.cas().install_policy(policy);
  }

  /// Run the legitimate singleton flow once; returns the consumed token.
  core::AttestationToken attest_once() {
    const auto start = runtime::start_singleton_enclave(
        bed_.cpu(), bed_.network(), bed_.cas_address(), image_,
        signed_image_.sigstruct, "restart-session");
    EXPECT_TRUE(start.ok()) << start.error;
    auto rt = bed_.make_runtime(runtime::RuntimeMode::kSinclave);
    runtime::RunOptions o;
    o.cas_address = bed_.cas_address();
    o.cas_identity = bed_.cas().identity();
    o.session_name = "restart-session";
    EXPECT_TRUE(rt.run(start.enclave, o).ok);
    return start.token;
  }

  workload::Testbed bed_;
  core::EnclaveImage image_;
  core::SinclaveSignedImage signed_image_;
  crypto::Drbg seal_rng_ = crypto::Drbg::from_seed(63, "seal");
  Bytes seal_key_ = seal_rng_.generate(32);
  MonotonicCounter counter_;
};

TEST_F(CasRestartTest, StateSurvivesRestart) {
  const auto token = attest_once();
  EXPECT_EQ(bed_.cas().tokens_used(), 1u);

  // Seal, "restart" (import into the same service), verify the consumed
  // token is still consumed.
  const Bytes blob =
      seal_state(seal_key_, counter_, bed_.cas().export_state(), seal_rng_);
  Bytes state;
  ASSERT_EQ(unseal_state(seal_key_, counter_, blob, state), UnsealStatus::kOk);
  bed_.cas().import_state(state);
  EXPECT_EQ(bed_.cas().tokens_used(), 1u);

  // Replaying the old token after restore still fails.
  attack::TeeImpersonator imp(&bed_.network(), &bed_.qe(), "nowhere",
                              bed_.child_rng("imp"));
  (void)token;  // replay path requires a report server; verdict suffices:
  // direct check through a fresh legitimate enclave with the stale token is
  // covered by test_attack; here assert the database state round-tripped.
  EXPECT_EQ(bed_.cas().tokens_outstanding(), 0u);
}

TEST_F(CasRestartTest, RollbackSnapshotIsRejected) {
  // Adversary snapshots CAS state BEFORE the token is consumed...
  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_,
      signed_image_.sigstruct, "restart-session");
  ASSERT_TRUE(start.ok());
  const Bytes pre_blob =
      seal_state(seal_key_, counter_, bed_.cas().export_state(), seal_rng_);

  // ...the token is consumed and fresh state sealed...
  auto rt = bed_.make_runtime(runtime::RuntimeMode::kSinclave);
  runtime::RunOptions o;
  o.cas_address = bed_.cas_address();
  o.cas_identity = bed_.cas().identity();
  o.session_name = "restart-session";
  ASSERT_TRUE(rt.run(start.enclave, o).ok);
  const Bytes post_blob =
      seal_state(seal_key_, counter_, bed_.cas().export_state(), seal_rng_);

  // ...and at "restart" the host supplies the pre-consumption snapshot.
  Bytes state;
  EXPECT_EQ(unseal_state(seal_key_, counter_, pre_blob, state),
            UnsealStatus::kRolledBack);
  // Only the latest state restores — the token stays consumed.
  ASSERT_EQ(unseal_state(seal_key_, counter_, post_blob, state),
            UnsealStatus::kOk);
  bed_.cas().import_state(state);
  EXPECT_EQ(bed_.cas().tokens_used(), 1u);
  EXPECT_EQ(bed_.cas().tokens_outstanding(), 0u);
}

TEST_F(CasRestartTest, ExportImportPreservesPolicies) {
  const Bytes state = bed_.cas().export_state();
  bed_.cas().import_state(state);
  // Policy still answers instance requests after the round trip.
  const auto start = runtime::start_singleton_enclave(
      bed_.cpu(), bed_.network(), bed_.cas_address(), image_,
      signed_image_.sigstruct, "restart-session");
  EXPECT_TRUE(start.ok()) << start.error;
}

TEST_F(CasRestartTest, ImportRejectsGarbage) {
  EXPECT_THROW(bed_.cas().import_state(Bytes{1, 2, 3}), ParseError);
}

}  // namespace
}  // namespace sinclave::cas
