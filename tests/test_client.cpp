// Tests for the CasClient SDK and the versioned wire envelope:
//  * sync + async retrieval through the typed client,
//  * retry-with-backoff on retryable statuses; typed refusals returned
//    immediately,
//  * version negotiation: legacy v0 peers still served, future-version
//    frames answered with kUnsupportedVersion, unknown commands and
//    malformed payloads answered typed (never dropped),
//  * the frontends never leak deserializer exceptions for hostile frames
//    (network-level truncation/bit-flip fuzz),
//  * the attested channel's typed statuses.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cas/client.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "server/cas_server.h"
#include "workload/testbed.h"

namespace sinclave::cas {
namespace {

using namespace std::chrono_literals;

class CasClientTest : public ::testing::Test {
 protected:
  CasClientTest()
      : bed_(workload::TestbedConfig{.seed = 123}),
        image_(core::EnclaveImage::synthetic("client", sgx::kPageSize,
                                             2 * sgx::kPageSize)),
        signer_(&bed_.user_signer()),
        signed_(signer_.sign_sinclave(image_)) {
    Policy p;
    p.session_name = "s";
    p.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    p.require_singleton = true;
    p.base_hash = signed_.base_hash;
    p.config.program = "noop";
    bed_.cas().install_policy(p);
  }

  workload::Testbed bed_;
  core::EnclaveImage image_;
  core::Signer signer_;
  core::SinclaveSignedImage signed_;
};

TEST_F(CasClientTest, SyncRetrievalSpeaksV1AndReturnsTypedResult) {
  CasClient client = bed_.make_cas_client();
  const InstanceResult got = client.get_instance("s", signed_.sigstruct);
  ASSERT_TRUE(got.ok()) << got.status.message();
  EXPECT_EQ(got.attempts, 1u);
  EXPECT_FALSE(got.token.is_zero());
  EXPECT_EQ(got.verifier_id, bed_.cas().verifier_id());
  EXPECT_TRUE(got.singleton_sigstruct.signature_valid());
}

TEST_F(CasClientTest, TypedRefusalsAreNotRetried) {
  CasClient client = bed_.make_cas_client(
      RetryPolicy{.max_attempts = 5, .initial_backoff = 1us});
  const InstanceResult got =
      client.get_instance("no-such-session", signed_.sigstruct);
  EXPECT_EQ(got.status.code, StatusCode::kUnknownSession);
  EXPECT_FALSE(got.status.retryable());
  EXPECT_EQ(got.attempts, 1u);  // a typed refusal burns no retry budget
}

TEST_F(CasClientTest, TransportFailureRetriesUpToBudgetThenSurfaces) {
  CasClient client(&bed_.network(),
                   CasClientConfig{.address = "nobody.listens.here",
                                   .retry = {.max_attempts = 3,
                                             .initial_backoff = 1us}});
  const InstanceResult got = client.get_instance("s", signed_.sigstruct);
  EXPECT_EQ(got.status.code, StatusCode::kUnavailable);
  EXPECT_TRUE(got.status.retryable());
  EXPECT_EQ(got.attempts, 3u);
}

TEST_F(CasClientTest, RetryableServerStatusIsRetriedUntilItClears) {
  // A service that answers kUnavailable twice, then serves for real —
  // the brownout a replicated CAS will produce during failover.
  std::atomic<int> calls{0};
  bed_.network().listen("flaky.instance", [&](ByteView raw) {
    const Envelope env = Envelope::deserialize(raw);
    ++calls;
    InstanceResponse resp;
    if (calls.load() <= 2) {
      resp.status = Status(StatusCode::kUnavailable);
    } else {
      resp = bed_.cas().handle_instance(
          InstanceRequest::deserialize(env.payload));
    }
    return env.reply(resp.serialize()).serialize();
  });

  CasClient client(&bed_.network(),
                   CasClientConfig{.address = "flaky",
                                   .retry = {.max_attempts = 4,
                                             .initial_backoff = 1us}});
  const InstanceResult got = client.get_instance("s", signed_.sigstruct);
  ASSERT_TRUE(got.ok()) << got.status.message();
  EXPECT_EQ(got.attempts, 3u);
  bed_.network().shutdown("flaky.instance");
}

TEST_F(CasClientTest, AsyncRetrievalDeliversTypedResultOnce) {
  CasClient client = bed_.make_cas_client();
  std::mutex mutex;
  std::condition_variable cv;
  int deliveries = 0;
  InstanceResult got;
  client.get_instance_async("s", signed_.sigstruct,
                            [&](const InstanceResult& r) {
                              std::lock_guard lock(mutex);
                              got = r;
                              ++deliveries;
                              cv.notify_all();
                            });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return deliveries > 0; }));
  EXPECT_EQ(deliveries, 1);
  EXPECT_TRUE(got.ok()) << got.status.message();
}

TEST_F(CasClientTest, AsyncDispatchFailureDeliversTypedUnavailable) {
  CasClient client(&bed_.network(),
                   CasClientConfig{.address = "nobody.listens.here",
                                   .retry = {.max_attempts = 2,
                                             .initial_backoff = 0us}});
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<InstanceResult> got;
  client.get_instance_async("s", signed_.sigstruct,
                            [&](const InstanceResult& r) {
                              std::lock_guard lock(mutex);
                              got = r;
                              cv.notify_all();
                            });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return got.has_value(); }));
  EXPECT_EQ(got->status.code, StatusCode::kUnavailable);
  EXPECT_EQ(got->attempts, 2u);  // immediate re-issue consumed the budget
}

// --- version negotiation ----------------------------------------------------

/// Raw-frame helper: send `frame` to the instance endpoint and decode the
/// (always well-formed) reply in whichever flavor came back.
InstanceResponse raw_instance_exchange(net::SimNetwork& net,
                                       const std::string& address,
                                       const Bytes& frame,
                                       Envelope* reply_env = nullptr) {
  auto conn = net.connect(address + ".instance");
  const Bytes raw = conn.call(frame);
  if (Envelope::matches(raw)) {
    const Envelope env = Envelope::deserialize(raw);
    if (reply_env != nullptr) *reply_env = env;
    return InstanceResponse::deserialize(env.payload);
  }
  return InstanceResponse::deserialize_v0(raw);
}

TEST_F(CasClientTest, LegacyV0PeerStillServedByServiceFrontend) {
  InstanceRequest req;
  req.session_name = "s";
  req.common_sigstruct = signed_.sigstruct;
  // v0 wire = the raw request, answered in the v0 layout.
  const InstanceResponse resp = raw_instance_exchange(
      bed_.network(), bed_.cas_address(), req.serialize());
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_TRUE(resp.singleton_sigstruct.signature_valid());
}

TEST_F(CasClientTest, FutureVersionFrameAnsweredUnsupportedVersion) {
  InstanceRequest req;
  req.session_name = "s";
  req.common_sigstruct = signed_.sigstruct;
  Envelope future;
  future.version = kProtocolVersion + 1;
  future.command = Command::kGetInstance;
  future.request_id = 42;
  future.payload = req.serialize();

  Envelope reply;
  const InstanceResponse resp = raw_instance_exchange(
      bed_.network(), bed_.cas_address(), future.serialize(), &reply);
  EXPECT_EQ(resp.status.code, StatusCode::kUnsupportedVersion);
  EXPECT_FALSE(resp.status.retryable());
  // The refusal is a current-version envelope echoing the request id, so
  // the future client can correlate it.
  EXPECT_EQ(reply.version, kProtocolVersion);
  EXPECT_EQ(reply.request_id, 42u);
}

TEST_F(CasClientTest, UnknownCommandAnsweredTyped) {
  Envelope bogus;
  bogus.command = static_cast<Command>(0x77);
  bogus.request_id = 7;
  bogus.payload = Bytes{1, 2, 3};
  const InstanceResponse resp = raw_instance_exchange(
      bed_.network(), bed_.cas_address(), bogus.serialize());
  EXPECT_EQ(resp.status.code, StatusCode::kUnknownCommand);
}

TEST_F(CasClientTest, ClientSurfacesUnsupportedVersionAsNonRetryable) {
  // A peer that no longer (or does not yet) speak our version: whatever we
  // send, it answers kUnsupportedVersion. The SDK must surface the typed
  // code without burning retries.
  bed_.network().listen("fromthefuture.instance", [](ByteView raw) {
    const Envelope env = Envelope::deserialize(raw);
    InstanceResponse resp;
    resp.status = Status(StatusCode::kUnsupportedVersion);
    return env.reply(resp.serialize()).serialize();
  });
  CasClient client(&bed_.network(),
                   CasClientConfig{.address = "fromthefuture",
                                   .retry = {.max_attempts = 4,
                                             .initial_backoff = 1us}});
  const InstanceResult got = client.get_instance("s", signed_.sigstruct);
  EXPECT_EQ(got.status.code, StatusCode::kUnsupportedVersion);
  EXPECT_EQ(got.attempts, 1u);
  bed_.network().shutdown("fromthefuture.instance");
}

// --- malformed frames at the frontends --------------------------------------

TEST_F(CasClientTest, MalformedFramesAnsweredTypedByBothFrontends) {
  server::CasServer server(&bed_.cas(), server::CasServerConfig{.workers = 2});
  server.bind(bed_.network(), "pooled");

  for (const std::string& address :
       {std::string(bed_.cas_address()), std::string("pooled")}) {
    // Garbage that is not an envelope: legacy decode fails -> v0 answer.
    const InstanceResponse legacy = raw_instance_exchange(
        bed_.network(), address, Bytes(16, 0xee));
    EXPECT_EQ(legacy.status.code, StatusCode::kMalformedRequest) << address;

    // An envelope whose payload is garbage: typed v1 answer.
    Envelope env;
    env.command = Command::kGetInstance;
    env.payload = Bytes(16, 0xee);
    const InstanceResponse enveloped = raw_instance_exchange(
        bed_.network(), address, env.serialize());
    EXPECT_EQ(enveloped.status.code, StatusCode::kMalformedRequest)
        << address;
  }
  EXPECT_EQ(server.metrics().malformed_frames.load(), 2u);
  EXPECT_EQ(server.metrics().get_instance.errors.load(), 2u);
  server.unbind();
}

TEST_F(CasClientTest, NetworkLevelFuzzNeverStrandsACaller) {
  // The worker-thread escape regression: every hostile frame — truncated
  // or bit-flipped, enveloped or not — must come back as a well-formed
  // response (either flavor), never strand the round trip or tear down
  // the server. Exercised against the pooled frontend, whose workers used
  // to re-throw deserializer exceptions into Completion::fail.
  server::CasServer server(&bed_.cas(), server::CasServerConfig{.workers = 2});
  server.bind(bed_.network(), "fuzzed");

  InstanceRequest req;
  req.session_name = "s";
  req.common_sigstruct = signed_.sigstruct;
  Envelope env;
  env.command = Command::kGetInstance;
  env.request_id = 9;
  env.payload = req.serialize();
  const Bytes wire = env.serialize();

  auto conn = bed_.network().connect("fuzzed.instance");
  auto rng = crypto::Drbg::from_seed(99, "wire-fuzz");
  const auto exchange = [&](const Bytes& frame) {
    const Bytes raw = conn.call(frame);  // must not throw
    if (Envelope::matches(raw))
      (void)InstanceResponse::deserialize(Envelope::deserialize(raw).payload);
    else
      (void)InstanceResponse::deserialize_v0(raw);
  };

  for (std::size_t len = 0; len < wire.size(); len += 13)
    exchange(Bytes(wire.begin(), wire.begin() + static_cast<long>(len)));
  for (int i = 0; i < 100; ++i) {
    Bytes mutated = wire;
    const Bytes pick = rng.generate(8);
    std::uint64_t r = 0;
    for (int b = 0; b < 8; ++b) r = (r << 8) | pick[b];
    mutated[r % mutated.size()] ^=
        static_cast<std::uint8_t>(1u << ((r >> 32) % 8));
    exchange(mutated);
  }

  // The server is still healthy: a clean request succeeds.
  CasClient client(&bed_.network(), CasClientConfig{.address = "fuzzed", .retry = {}});
  EXPECT_TRUE(client.get_instance("s", signed_.sigstruct).ok());
  server.unbind();
}

// --- attested channel -------------------------------------------------------

TEST_F(CasClientTest, AttestedChannelReportsTypedStatuses) {
  AttestedChannel channel(&bed_.network(), bed_.cas_address(),
                          crypto::Drbg::from_seed(5, "chan"));

  // Config before attestation is a typed local refusal.
  EXPECT_EQ(channel.get_config().status().code,
            StatusCode::kSessionNotAttested);

  // A payload with no valid quote: the verifier rejects the handshake —
  // typed, non-retryable.
  AttestPayload bogus;
  bogus.session_name = "s";
  const Status attest =
      channel.attest(bed_.cas().identity(), bogus);
  EXPECT_EQ(attest.code, StatusCode::kAttestationRejected);
  EXPECT_FALSE(attest.retryable());
  EXPECT_FALSE(channel.attested());

  // An unreachable verifier is transient.
  AttestedChannel lost(&bed_.network(), "cas.gone",
                       crypto::Drbg::from_seed(6, "chan2"));
  EXPECT_EQ(lost.attest(bed_.cas().identity(), bogus).code,
            StatusCode::kUnavailable);
}

TEST_F(CasClientTest, FutureVersionAttestHandshakeRejectedAsUnsupported) {
  // A future-version kAttest envelope cannot be verified by this server;
  // the handshake rejection record carries the typed protocol-level
  // status so the future client learns to downgrade rather than
  // diagnosing a refused attestation.
  AttestPayload payload;
  payload.session_name = "s";
  Envelope future;
  future.version = kProtocolVersion + 1;
  future.command = Command::kAttest;
  future.payload = payload.serialize();

  net::SecureClient client(crypto::Drbg::from_seed(9, "future-chan"));
  StatusCode rejected = StatusCode::kOk;
  const auto accepted =
      client.connect(bed_.network().connect(bed_.cas_address()),
                     bed_.cas().identity(), future.serialize(), &rejected);
  EXPECT_FALSE(accepted.has_value());
  EXPECT_EQ(rejected, StatusCode::kUnsupportedVersion);

  // Verification failures stay the generic rejection — the handshake is
  // not an oracle for why the verifier said no.
  net::SecureClient client2(crypto::Drbg::from_seed(10, "bogus-chan"));
  Envelope current = future;
  current.version = kProtocolVersion;
  StatusCode generic = StatusCode::kOk;
  EXPECT_FALSE(client2
                   .connect(bed_.network().connect(bed_.cas_address()),
                            bed_.cas().identity(), current.serialize(),
                            &generic)
                   .has_value());
  EXPECT_EQ(generic, StatusCode::kAttestationRejected);
}

// --- client resilience: jittered backoff, deadline budget, breaker ----------

TEST(RetryPolicyBackoff, PureReproducibleAndFleetDesynchronized) {
  RetryPolicy policy;
  policy.initial_backoff = 100us;
  policy.max_backoff = 800us;

  // Reproducibility: the schedule is a pure function of (retry, seed).
  for (std::size_t retry = 1; retry <= 6; ++retry) {
    const auto first = policy.backoff_before(retry, 42);
    EXPECT_EQ(first, policy.backoff_before(retry, 42)) << "retry " << retry;
    // Full jitter: uniform in [0, window], window doubling then saturating.
    const auto window =
        std::min(policy.max_backoff, policy.initial_backoff * (1u << (retry - 1)));
    EXPECT_GE(first.count(), 0) << "retry " << retry;
    EXPECT_LE(first, window) << "retry " << retry;
  }

  // Fleet de-synchronization: distinct jitter seeds draw distinct sleeps.
  // (Deterministic — backoff_before is pure, so this can never flake.)
  std::set<std::chrono::microseconds::rep> draws;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    draws.insert(policy.backoff_before(4, seed).count());
  EXPECT_GE(draws.size(), 6u)
      << "8 clients retrying in lockstep would re-create the storm";
}

TEST_F(CasClientTest, DeadlineBudgetCutsRetriesBeforeMaxAttempts) {
  // A huge attempt budget against a dead address: the per-operation
  // deadline must stop the retry loop long before max_attempts does.
  CasClient client(&bed_.network(),
                   CasClientConfig{.address = "nobody.listens.here",
                                   .retry = {.max_attempts = 10000,
                                             .initial_backoff = 1ms,
                                             .max_backoff = 1ms,
                                             .jitter_seed = 9,
                                             .deadline = 20ms}});
  const auto start = std::chrono::steady_clock::now();
  const InstanceResult got = client.get_instance("s", signed_.sigstruct);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(got.status.code, StatusCode::kUnavailable);
  EXPECT_GE(got.attempts, 1u);
  EXPECT_LT(got.attempts, 10000u);  // the budget, not the count, ended it
  EXPECT_LT(elapsed, 5s);  // and it ended promptly, not after 10000 sleeps
}

TEST_F(CasClientTest, RetryAfterHintPacesTheNextAttempt) {
  // A shedding server embeds a retry-after hint in its kUnavailable
  // detail; the client must pace by the hint instead of its own (here
  // near-zero) jitter window.
  std::atomic<int> calls{0};
  bed_.network().listen("shedding.instance", [&](ByteView raw) {
    const Envelope env = Envelope::deserialize(raw);
    ++calls;
    InstanceResponse resp;
    if (calls.load() <= 2) {
      resp.status = Status(StatusCode::kUnavailable,
                           retry_after_detail(std::chrono::milliseconds(25)));
    } else {
      resp = bed_.cas().handle_instance(
          InstanceRequest::deserialize(env.payload));
    }
    return env.reply(resp.serialize()).serialize();
  });

  // Sanity: the hint round-trips through the canonical composer/parser.
  const auto hint =
      parse_retry_after(retry_after_detail(std::chrono::milliseconds(25)));
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, std::chrono::milliseconds(25));

  CasClient client(&bed_.network(),
                   CasClientConfig{.address = "shedding",
                                   .retry = {.max_attempts = 4,
                                             .initial_backoff = 1us,
                                             .max_backoff = 1us}});
  const auto start = std::chrono::steady_clock::now();
  const InstanceResult got = client.get_instance("s", signed_.sigstruct);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(got.ok()) << got.status.message();
  EXPECT_EQ(got.attempts, 3u);
  // Two hinted sleeps of 25 ms each; jitter alone would have been ~2 us.
  EXPECT_GE(elapsed, 40ms);
  bed_.network().shutdown("shedding.instance");
}

TEST_F(CasClientTest, BreakerOpensFailsFastAndClosesOnAHealthyProbe) {
  CasClient client(&bed_.network(),
                   CasClientConfig{.address = "late",
                                   .retry = {.max_attempts = 1,
                                             .initial_backoff = 1us,
                                             .breaker_threshold = 2,
                                             .breaker_cooldown = 30ms}});
  // Two consecutive transport failures reach the threshold and trip it.
  for (int i = 0; i < 2; ++i) {
    const InstanceResult got = client.get_instance("s", signed_.sigstruct);
    EXPECT_EQ(got.status.code, StatusCode::kUnavailable);
    EXPECT_EQ(got.attempts, 1u);
  }
  EXPECT_EQ(client.stats().breaker_trips, 1u);

  // While open: typed fast-fail, zero wire attempts, counted.
  const InstanceResult fast = client.get_instance("s", signed_.sigstruct);
  EXPECT_EQ(fast.status.code, StatusCode::kUnavailable);
  EXPECT_EQ(fast.attempts, 0u);  // nothing touched the wire
  EXPECT_EQ(fast.status.message(), breaker_open_detail());
  EXPECT_EQ(client.stats().breaker_fast_fails, 1u);

  // The service comes back; after the cooldown the next operation probes
  // the wire, succeeds, and the breaker closes (no further trips).
  bed_.network().listen("late.instance", [&](ByteView raw) {
    const Envelope env = Envelope::deserialize(raw);
    return env
        .reply(bed_.cas()
                   .handle_instance(InstanceRequest::deserialize(env.payload))
                   .serialize())
        .serialize();
  });
  std::this_thread::sleep_for(40ms);
  const InstanceResult probe = client.get_instance("s", signed_.sigstruct);
  ASSERT_TRUE(probe.ok()) << probe.status.message();
  EXPECT_EQ(probe.attempts, 1u);
  const InstanceResult after = client.get_instance("s", signed_.sigstruct);
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(client.stats().breaker_trips, 1u);  // closed cleanly, stayed shut
  bed_.network().shutdown("late.instance");
}

}  // namespace
}  // namespace sinclave::cas
