// Control for the negative-compile check: identical shape to
// threadsafety_violation.cpp but with correct locking. This file MUST
// compile cleanly under
//
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
//
// so that a failure of the violation file is attributable to the TSA
// diagnostic rather than a broken include path or flag typo.

#include "common/mutex.h"

namespace {

class Counter {
 public:
  void bump() {
    sinclave::MutexLock lock(mu_);
    ++value_;
  }

  int read() {
    sinclave::MutexLock lock(mu_);
    return value_;
  }

 private:
  sinclave::Mutex mu_{sinclave::LockRank::kCasObserve, "negative.counter"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read();
}
