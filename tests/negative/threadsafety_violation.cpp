// Negative-compile fixture: this file MUST FAIL to compile under
//
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
//
// CI compiles it expecting a nonzero exit. If it ever compiles cleanly,
// the thread-safety annotations in common/mutex.h have silently lost
// their teeth (e.g. the macros collapsed to no-ops under clang) and the
// whole -Wthread-safety gate is vacuous. The companion file
// threadsafety_control.cpp is the same shape with correct locking and
// must PASS, proving the failure here is the TSA diagnostic and not a
// broken include path.
//
// Deliberately OUTSIDE the tests/*.cpp glob (tests/negative/ is not
// built into any test binary).

#include "common/mutex.h"

namespace {

class Counter {
 public:
  // BUG (on purpose): touches value_ without holding mu_.
  void bump() { ++value_; }

  int read() {
    sinclave::MutexLock lock(mu_);
    return value_;
  }

 private:
  sinclave::Mutex mu_{sinclave::LockRank::kCasObserve, "negative.counter"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read();
}
