// Unit tests for the CAS verifier service: policy persistence, the
// instance (token issuance) endpoint, attestation verdicts, and token
// accounting — exercised directly, without the full runtime stack.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cas/service.h"
#include "common/serial.h"
#include "core/predictor.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "quote/quoting_enclave.h"
#include "runtime/starter.h"
#include "sgx/cpu.h"

namespace sinclave::cas {
namespace {

class CasTest : public ::testing::Test {
 protected:
  CasTest()
      : rng_(crypto::Drbg::from_seed(5, "cas-tests")),
        signer_key_(crypto::RsaKeyPair::generate(rng_, 1024)),
        cas_(&attestation_, crypto::RsaKeyPair::generate(rng_, 1024),
             crypto::Drbg::from_seed(6, "cas-service")),
        image_(core::EnclaveImage::synthetic("cas-test", sgx::kPageSize,
                                             2 * sgx::kPageSize)),
        signer_(&signer_key_),
        signed_(signer_.sign_sinclave(image_)) {
    cas_.add_signer_key(signer_key_);
  }

  Policy singleton_policy(const std::string& name) {
    Policy p;
    p.session_name = name;
    p.expected_signer = crypto::sha256(signer_key_.public_key().modulus_be());
    p.require_singleton = true;
    p.base_hash = signed_.base_hash;
    p.config.program = "x";
    return p;
  }

  InstanceRequest request(const std::string& name) {
    InstanceRequest r;
    r.session_name = name;
    r.common_sigstruct = signed_.sigstruct;
    return r;
  }

  crypto::Drbg rng_;
  crypto::RsaKeyPair signer_key_;
  quote::AttestationService attestation_;
  CasService cas_;
  core::EnclaveImage image_;
  core::Signer signer_;
  core::SinclaveSignedImage signed_;
};

TEST_F(CasTest, VerifierIdIsIdentityHash) {
  EXPECT_EQ(cas_.verifier_id(),
            crypto::sha256(cas_.identity().modulus_be()));
}

TEST_F(CasTest, InstanceRequestHappyPath) {
  cas_.install_policy(singleton_policy("s"));
  const InstanceResponse resp = cas_.handle_instance(request("s"));
  ASSERT_TRUE(resp.ok()) << resp.status.message();
  EXPECT_EQ(resp.status.code, StatusCode::kOk);
  EXPECT_FALSE(resp.token.is_zero());
  EXPECT_EQ(resp.verifier_id, cas_.verifier_id());
  EXPECT_TRUE(resp.singleton_sigstruct.signature_valid());
  // The on-demand SigStruct matches the prediction for this token.
  core::InstancePage page;
  page.token = resp.token;
  page.verifier_id = resp.verifier_id;
  EXPECT_EQ(resp.singleton_sigstruct.enclave_hash,
            core::MeasurementPredictor::predict(signed_.base_hash, page));
}

TEST_F(CasTest, InstanceRequestUnknownSession) {
  const InstanceResponse resp = cas_.handle_instance(request("nope"));
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, StatusCode::kUnknownSession);
  // The human-readable message comes from the shared code->message table.
  EXPECT_EQ(resp.status.message(),
            status_message(StatusCode::kUnknownSession));
  EXPECT_EQ(resp.status.message(), "unknown session");
}

TEST_F(CasTest, InstanceRequestBaselineSessionRefused) {
  Policy p = singleton_policy("base");
  p.require_singleton = false;
  p.base_hash.reset();
  p.expected_mr_enclave = signed_.sigstruct.enclave_hash;
  cas_.install_policy(p);
  const InstanceResponse resp = cas_.handle_instance(request("base"));
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, StatusCode::kNotSingleton);
}

TEST_F(CasTest, InstanceRequestNeedsSignerKey) {
  CasService bare(&attestation_,
                  crypto::RsaKeyPair::generate(rng_, 1024),
                  crypto::Drbg::from_seed(7, "bare"));
  bare.install_policy(singleton_policy("s"));
  const InstanceResponse resp = bare.handle_instance(request("s"));
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, StatusCode::kNoSignerKey);
  EXPECT_EQ(resp.status.message(), "no signer key uploaded for this session");
}

TEST_F(CasTest, InstanceRequestRejectsTamperedSigstruct) {
  cas_.install_policy(singleton_policy("s"));
  InstanceRequest req = request("s");
  req.common_sigstruct.signature[3] ^= 1;
  const InstanceResponse resp = cas_.handle_instance(req);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, StatusCode::kBadSignature);
}

TEST_F(CasTest, InstanceRequestRejectsForeignSigner) {
  cas_.install_policy(singleton_policy("s"));
  auto other_key = crypto::RsaKeyPair::generate(rng_, 1024);
  cas_.add_signer_key(other_key);
  core::Signer other_signer(&other_key);
  InstanceRequest req = request("s");
  req.common_sigstruct = other_signer.sign_sinclave(image_).sigstruct;
  const InstanceResponse resp = cas_.handle_instance(req);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, StatusCode::kWrongSigner);
}

TEST_F(CasTest, InstanceRequestRejectsWrongBaseImage) {
  cas_.install_policy(singleton_policy("s"));
  core::EnclaveImage other = image_;
  other.code[0] ^= 1;
  InstanceRequest req = request("s");
  req.common_sigstruct = signer_.sign_sinclave(other).sigstruct;
  const InstanceResponse resp = cas_.handle_instance(req);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status.code, StatusCode::kBaseHashMismatch);
  EXPECT_NE(resp.status.message().find("base hash"), std::string::npos);
}

TEST_F(CasTest, MintBatchMintsDistinctFirstClassCredentials) {
  const Policy policy = singleton_policy("s");
  cas_.install_policy(policy);
  CasService::InstanceTimings timings;
  const auto batch = cas_.mint_batch(policy, signed_.sigstruct, 5, &timings);
  ASSERT_EQ(batch.size(), 5u);

  std::set<std::string> tokens;
  for (const auto& cred : batch) {
    EXPECT_FALSE(cred.token.is_zero());
    tokens.insert(cred.token.hex());
    // Every batch member is a full credential: the prediction matches and
    // the SigStruct verifies under the session signer.
    core::InstancePage page;
    page.token = cred.token;
    page.verifier_id = cas_.verifier_id();
    EXPECT_EQ(cred.mr_enclave,
              core::MeasurementPredictor::predict(signed_.base_hash, page));
    EXPECT_EQ(cred.sigstruct.enclave_hash, cred.mr_enclave);
    EXPECT_TRUE(cred.sigstruct.signature_valid());
    EXPECT_EQ(cred.sigstruct.mr_signer(), policy.expected_signer);
  }
  EXPECT_EQ(tokens.size(), 5u);  // no token minted twice
  EXPECT_GT(timings.sign.count(), 0);
  EXPECT_GT(timings.predict.count(), 0);
  // Pure minting: nothing is registered until the serving layer issues.
  EXPECT_EQ(cas_.tokens_outstanding(), 0u);
}

TEST_F(CasTest, MintBatchEdgeCases) {
  const Policy policy = singleton_policy("s");
  cas_.install_policy(policy);
  EXPECT_TRUE(cas_.mint_batch(policy, signed_.sigstruct, 0).empty());
  Policy not_singleton = policy;
  not_singleton.require_singleton = false;
  EXPECT_THROW(cas_.mint_batch(not_singleton, signed_.sigstruct, 1), Error);
}

TEST_F(CasTest, TokensAreUniqueAndTracked) {
  cas_.install_policy(singleton_policy("s"));
  const auto a = cas_.handle_instance(request("s"));
  const auto b = cas_.handle_instance(request("s"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.token, b.token);
  EXPECT_EQ(cas_.tokens_outstanding(), 2u);
  EXPECT_EQ(cas_.tokens_used(), 0u);
}

TEST_F(CasTest, TimingsPopulatedAfterInstanceRequest) {
  cas_.install_policy(singleton_policy("s"));
  ASSERT_TRUE(cas_.handle_instance(request("s")).ok());
  const auto& t = cas_.last_instance_timings();
  EXPECT_GT(t.total.count(), 0);
  EXPECT_GT(t.sign.count(), 0);
  EXPECT_GT(t.verify.count(), 0);
  EXPECT_GT(t.predict.count(), 0);
  EXPECT_LE(t.sign + t.verify + t.predict + t.db_load, t.total);
}

TEST_F(CasTest, PolicyReplaceTakesEffect) {
  // Installing a policy with the same session name replaces it — the
  // software-update path: the new version's base hash supersedes the old.
  cas_.install_policy(singleton_policy("s"));
  core::EnclaveImage v2 = image_;
  v2.code[0] ^= 0xff;
  v2.isv_svn = 2;
  const auto signed_v2 = signer_.sign_sinclave(v2);
  Policy p2 = singleton_policy("s");
  p2.base_hash = signed_v2.base_hash;
  cas_.install_policy(p2);

  // Old binary refused, new binary accepted.
  EXPECT_FALSE(cas_.handle_instance(request("s")).ok());
  InstanceRequest req;
  req.session_name = "s";
  req.common_sigstruct = signed_v2.sigstruct;
  EXPECT_TRUE(cas_.handle_instance(req).ok());
}

// --- striped token-spend store ---

TEST(CasTokenStripes, ExactlyOnceSpendUnderCrossStripeRaces) {
  // The token store is sharded by token id. Race many *distinct* tokens
  // (landing on different stripes) spending concurrently, with two racers
  // per token: each token must attest exactly once, and the aggregate
  // accounting (summed across stripes) must balance. Run under TSAN in
  // CI, this also asserts the striped store itself is race-free.
  crypto::Drbg rng = crypto::Drbg::from_seed(77, "token-race");
  crypto::RsaKeyPair signer_key = crypto::RsaKeyPair::generate(rng, 1024);
  quote::AttestationService attestation;
  CasService cas(&attestation, crypto::RsaKeyPair::generate(rng, 1024),
                 crypto::Drbg::from_seed(78, "token-race-cas"));
  cas.add_signer_key(signer_key);

  sgx::SgxCpu cpu(sgx::SgxCpu::Config{});
  crypto::Drbg qe_rng = crypto::Drbg::from_seed(79, "token-race-qe");
  quote::QuotingEnclave qe(cpu, qe_rng);
  attestation.register_platform(qe.attestation_key());

  const core::EnclaveImage image = core::EnclaveImage::synthetic(
      "race", sgx::kPageSize, 2 * sgx::kPageSize);
  const core::Signer signer(&signer_key);
  const auto signed_image = signer.sign_sinclave(image);

  Policy policy;
  policy.session_name = "race";
  policy.expected_signer =
      crypto::sha256(signer_key.public_key().modulus_be());
  policy.require_singleton = true;
  policy.base_hash = signed_image.base_hash;
  policy.config.program = "noop";
  cas.install_policy(policy);

  net::SimNetwork net;
  cas.bind(net, "cas");

  constexpr int kTokens = 8;
  constexpr int kRacersPerToken = 2;
  struct Attempt {
    std::unique_ptr<net::SecureClient> client;
    AttestPayload payload;
    int token_index;
  };
  std::vector<Attempt> attempts;
  for (int t = 0; t < kTokens; ++t) {
    InstanceRequest req;
    req.session_name = "race";
    req.common_sigstruct = signed_image.sigstruct;
    const InstanceResponse resp = cas.handle_instance(req);
    ASSERT_TRUE(resp.ok());
    core::InstancePage page;
    page.token = resp.token;
    page.verifier_id = resp.verifier_id;
    const auto enclave = runtime::start_enclave(
        cpu, image, resp.singleton_sigstruct, page);
    ASSERT_TRUE(enclave.ok());
    for (int r = 0; r < kRacersPerToken; ++r) {
      Attempt a;
      a.client = std::make_unique<net::SecureClient>(
          crypto::Drbg::from_seed(
              static_cast<std::uint64_t>(100 + t * kRacersPerToken + r),
              "race-channel"));
      const sgx::Report report =
          cpu.ereport(enclave.id, qe.target_info(),
                      net::channel_binding(a.client->dh_public()));
      const auto quote = qe.generate_quote(report);
      ASSERT_TRUE(quote.has_value());
      a.payload.session_name = "race";
      a.payload.quote = *quote;
      a.payload.token = resp.token;
      a.token_index = t;
      attempts.push_back(std::move(a));
    }
  }

  std::array<std::atomic<int>, kTokens> accepted{};
  std::atomic<int> rejected{0};
  std::vector<std::thread> racers;
  for (Attempt& a : attempts) {
    racers.emplace_back([&net, &cas, &accepted, &rejected, &a] {
      const auto outcome =
          a.client->connect(net.connect("cas"), cas.identity(),
                            a.payload.serialize());
      if (outcome.has_value())
        ++accepted[static_cast<std::size_t>(a.token_index)];
      else
        ++rejected;
    });
  }
  for (auto& t : racers) t.join();

  for (int t = 0; t < kTokens; ++t)
    EXPECT_EQ(accepted[static_cast<std::size_t>(t)].load(), 1)
        << "token " << t << " must attest exactly once";
  EXPECT_EQ(rejected.load(), kTokens * (kRacersPerToken - 1));
  EXPECT_EQ(cas.tokens_used(), static_cast<std::size_t>(kTokens));
  EXPECT_EQ(cas.tokens_outstanding(), 0u);
}

// --- protocol serialization ---

TEST(Protocol, AppConfigRoundTrip) {
  AppConfig c;
  c.program = "prog";
  c.args = {"a", "b"};
  c.env = {{"K", "V"}, {"X", "Y"}};
  c.secrets = {{"s1", Bytes{1, 2, 3}}, {"s2", {}}};
  c.fs_key = Bytes(32, 9);
  c.fs_manifest_root.data[0] = 7;
  EXPECT_EQ(AppConfig::deserialize(c.serialize()), c);
}

TEST(Protocol, EmptyAppConfigRoundTrip) {
  EXPECT_EQ(AppConfig::deserialize(AppConfig{}.serialize()), AppConfig{});
}

TEST(Protocol, InstanceResponseErrorRoundTrip) {
  InstanceResponse r;
  r.status = Status(StatusCode::kUnknownSession, "extra detail");
  const InstanceResponse back = InstanceResponse::deserialize(r.serialize());
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status.code, StatusCode::kUnknownSession);
  EXPECT_EQ(back.status.message(), "extra detail");
}

TEST(Protocol, EnvelopeRoundTrip) {
  Envelope e;
  e.command = Command::kGetInstance;
  e.request_id = 0x1122334455667788ull;
  e.payload = Bytes{1, 2, 3};
  const Envelope back = Envelope::deserialize(e.serialize());
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.command, e.command);
  EXPECT_EQ(back.request_id, e.request_id);
  EXPECT_EQ(back.payload, e.payload);
  EXPECT_TRUE(Envelope::matches(e.serialize()));
}

TEST(Protocol, EnvelopeNeverMatchesLegacyFrames) {
  // A legacy instance request starts with the u32 length of its session
  // name; for the magic to collide the name would have to be ~3.2 GB.
  InstanceRequest req;
  req.session_name = "ordinary-session";
  EXPECT_FALSE(Envelope::matches(req.serialize()));
  // Legacy secure-channel plaintext is a single command byte.
  EXPECT_FALSE(Envelope::matches(Bytes{1}));
  EXPECT_FALSE(Envelope::matches(Bytes{}));
}

TEST(Protocol, V0ResponseEncodingMatchesSeedLayout) {
  // The v0 encoding is the seed-era wire format bit for bit: a legacy
  // decoder reading `u8 ok | str error | token | verifier id | bytes sig`
  // must keep working.
  InstanceResponse r;
  r.status = Status(StatusCode::kUnknownSession);
  const Bytes wire = r.serialize_v0();
  ByteReader reader(wire);
  EXPECT_EQ(reader.u8(), 0u);                        // ok = false
  EXPECT_EQ(reader.str(), "unknown session");        // canonical message
  (void)reader.raw(32);                              // token
  (void)reader.raw(32);                              // verifier id
  EXPECT_TRUE(reader.bytes().empty());               // no sigstruct
  reader.expect_done();

  const InstanceResponse back = InstanceResponse::deserialize_v0(wire);
  EXPECT_EQ(back.status.code, StatusCode::kUnknownSession);
}

TEST(Protocol, LegacyErrorStringsMapBackToCodes) {
  for (const StatusCode code :
       {StatusCode::kUnknownSession, StatusCode::kNotSingleton,
        StatusCode::kNoSignerKey, StatusCode::kBadSignature,
        StatusCode::kWrongSigner, StatusCode::kBaseHashMismatch}) {
    EXPECT_EQ(status_code_from_legacy(status_message(code)), code)
        << to_string(code);
  }
  // Unknown strings survive as kInternal with the text preserved.
  EXPECT_EQ(status_code_from_legacy("weird bespoke failure"),
            StatusCode::kInternal);
  InstanceResponse r;
  r.status = Status(StatusCode::kInternal, "weird bespoke failure");
  const InstanceResponse back =
      InstanceResponse::deserialize_v0(r.serialize_v0());
  EXPECT_EQ(back.status.code, StatusCode::kInternal);
  EXPECT_EQ(back.status.message(), "weird bespoke failure");
}

TEST(Protocol, ConfigResponseRoundTripsBothEncodings) {
  ConfigResponse ok;
  ok.status = Status();
  ok.config.program = "prog";
  ok.config.secrets["k"] = Bytes{9, 9};
  EXPECT_EQ(ConfigResponse::deserialize(ok.serialize()).config, ok.config);
  EXPECT_EQ(ConfigResponse::deserialize_v0(ok.serialize_v0()).config,
            ok.config);

  ConfigResponse denied;
  denied.status = Status(StatusCode::kSessionNotAttested);
  EXPECT_EQ(ConfigResponse::deserialize(denied.serialize()).status.code,
            StatusCode::kSessionNotAttested);
  EXPECT_EQ(ConfigResponse::deserialize_v0(denied.serialize_v0()).status.code,
            StatusCode::kSessionNotAttested);
}

TEST(Protocol, PolicySerializationRoundTripAllFields) {
  Policy p;
  p.session_name = "sess";
  p.expected_signer.data[1] = 2;
  p.require_singleton = true;
  p.allow_debug = true;
  p.expected_mr_enclave = sgx::Measurement{};
  crypto::Sha256 h;
  h.update(Bytes(64, 1));
  p.base_hash = core::BaseHash{h.export_state(), 4 * sgx::kPageSize,
                               3 * sgx::kPageSize, 1};
  p.config.program = "x";
  const Policy back = Policy::deserialize(p.serialize());
  EXPECT_EQ(back.session_name, p.session_name);
  EXPECT_EQ(back.require_singleton, p.require_singleton);
  EXPECT_EQ(back.allow_debug, p.allow_debug);
  EXPECT_EQ(back.expected_mr_enclave, p.expected_mr_enclave);
  EXPECT_EQ(back.base_hash->state, p.base_hash->state);
  EXPECT_EQ(back.config, p.config);
}

TEST(Protocol, PolicyWithoutOptionalsRoundTrip) {
  Policy p;
  p.session_name = "min";
  const Policy back = Policy::deserialize(p.serialize());
  EXPECT_FALSE(back.expected_mr_enclave.has_value());
  EXPECT_FALSE(back.base_hash.has_value());
}

TEST(Protocol, AttestPayloadTokenOptional) {
  quote::Quote q;
  q.report.identity.isv_prod_id = 3;
  AttestPayload with;
  with.session_name = "s";
  with.quote = q;
  with.token = core::AttestationToken::from_view(Bytes(32, 5));
  const AttestPayload back = AttestPayload::deserialize(with.serialize());
  EXPECT_TRUE(back.token.has_value());
  EXPECT_EQ(*back.token, *with.token);

  AttestPayload without;
  without.session_name = "s";
  without.quote = q;
  EXPECT_FALSE(
      AttestPayload::deserialize(without.serialize()).token.has_value());
}

TEST(Protocol, LegacyConfigFrameToleratesTrailingBytesLikeTheSeed) {
  // The seed decoder read only the command byte from the secure-channel
  // plaintext; padding after it must still be served, not refused.
  bool served = false;
  const auto handler = [&]() {
    served = true;
    ConfigResponse resp;
    resp.status = Status();
    return resp;
  };
  FrameInfo info;
  const Bytes padded{1, 0xaa, 0xbb};
  const auto resp =
      ConfigResponse::deserialize_v0(serve_config_frame(padded, handler,
                                                        &info));
  EXPECT_TRUE(served);
  EXPECT_TRUE(resp.ok());
  EXPECT_TRUE(info.legacy);

  // Unknown legacy command byte and empty plaintext stay typed refusals.
  EXPECT_EQ(ConfigResponse::deserialize_v0(
                serve_config_frame(Bytes{9}, handler))
                .status.code,
            StatusCode::kUnknownCommand);
  EXPECT_EQ(ConfigResponse::deserialize_v0(
                serve_config_frame(Bytes{}, handler))
                .status.code,
            StatusCode::kMalformedRequest);
}

TEST(Protocol, MalformedBytesThrowParseError) {
  EXPECT_THROW(AppConfig::deserialize(Bytes{1, 2, 3}), ParseError);
  EXPECT_THROW(InstanceRequest::deserialize(Bytes{}), ParseError);
  EXPECT_THROW(AttestPayload::deserialize(Bytes(10, 0xff)), ParseError);
  EXPECT_THROW(ConfigResponse::deserialize(Bytes{}), ParseError);
  EXPECT_THROW(Envelope::deserialize(Bytes{}), ParseError);
}

// Fuzz-style regression over every protocol message: all truncation
// lengths plus seeded bit flips. A deserializer faced with hostile bytes
// may succeed (the mutation landed somewhere inert) or throw from the
// Error hierarchy — anything else (foreign exception, crash) is the bug
// class that used to escape the serving frontends' worker threads.
TEST(Protocol, TruncationAndBitFlipFuzzStaysInsideErrorHierarchy) {
  auto rng = crypto::Drbg::from_seed(4242, "protocol-fuzz");
  const auto signer = crypto::RsaKeyPair::generate(rng, 1024);
  const core::EnclaveImage image = core::EnclaveImage::synthetic(
      "fuzz", sgx::kPageSize, 2 * sgx::kPageSize);
  const core::Signer s(&signer);
  const auto signed_image = s.sign_sinclave(image);

  InstanceRequest req;
  req.session_name = "fuzz";
  req.common_sigstruct = signed_image.sigstruct;

  InstanceResponse ok_resp;
  ok_resp.status = Status();
  ok_resp.singleton_sigstruct = signed_image.sigstruct;

  AttestPayload attest;
  attest.session_name = "fuzz";
  attest.token = core::AttestationToken::from_view(Bytes(32, 7));

  ConfigResponse cfg;
  cfg.status = Status();
  cfg.config.program = "p";
  cfg.config.secrets["k"] = Bytes(16, 3);

  Envelope env;
  env.command = Command::kGetInstance;
  env.request_id = 77;
  env.payload = req.serialize();

  struct Target {
    const char* name;
    Bytes wire;
    std::function<void(ByteView)> parse;
  };
  const std::vector<Target> targets = {
      {"envelope", env.serialize(),
       [](ByteView b) { (void)Envelope::deserialize(b); }},
      {"instance-request", req.serialize(),
       [](ByteView b) { (void)InstanceRequest::deserialize(b); }},
      {"instance-response", ok_resp.serialize(),
       [](ByteView b) { (void)InstanceResponse::deserialize(b); }},
      {"instance-response-v0", ok_resp.serialize_v0(),
       [](ByteView b) { (void)InstanceResponse::deserialize_v0(b); }},
      {"attest-payload", attest.serialize(),
       [](ByteView b) { (void)AttestPayload::deserialize(b); }},
      {"config-response", cfg.serialize(),
       [](ByteView b) { (void)ConfigResponse::deserialize(b); }},
      {"config-response-v0", cfg.serialize_v0(),
       [](ByteView b) { (void)ConfigResponse::deserialize_v0(b); }},
      {"app-config", cfg.config.serialize(),
       [](ByteView b) { (void)AppConfig::deserialize(b); }},
  };

  const auto must_stay_contained = [](const Target& t, ByteView mutated,
                                      const char* what) {
    try {
      t.parse(mutated);  // success is fine: the mutation may be inert
    } catch (const Error&) {
      // fine: ParseError or another typed library error
    } catch (...) {
      FAIL() << t.name << ": non-Error exception escaped on " << what;
    }
  };

  for (const Target& t : targets) {
    // Every truncation length (caps the quadratic cost on big messages).
    const std::size_t step = t.wire.size() > 512 ? 7 : 1;
    for (std::size_t len = 0; len < t.wire.size(); len += step)
      must_stay_contained(t, ByteView(t.wire.data(), len), "truncation");

    // Seeded single-bit flips.
    for (int i = 0; i < 200; ++i) {
      Bytes mutated = t.wire;
      const Bytes pick = rng.generate(8);
      std::uint64_t r = 0;
      for (int b = 0; b < 8; ++b) r = (r << 8) | pick[b];
      mutated[r % mutated.size()] ^= static_cast<std::uint8_t>(
          1u << ((r >> 32) % 8));
      must_stay_contained(t, mutated, "bit flip");
    }
  }
}

}  // namespace
}  // namespace sinclave::cas
