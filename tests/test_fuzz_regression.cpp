// Tier-1 replay gate for the fuzz corpus.
//
// Links the fuzz harness BODIES (fuzz/harnesses.h) directly — no fuzzer
// runtime — and replays the checked-in regression corpus through them
// under plain ctest. Every input in fuzz/corpus/regressions/ is a
// minimized reproducer of a bug that once crashed a harness; replaying
// them here means a reintroduced decoder bug fails the ordinary test
// suite, on any toolchain, without anyone having to run the fuzzers.
//
// File naming IS the dispatch: <harness>-<what-it-reproduces>, e.g.
// fuzz_envelope-introspect-count-bomb runs through run_envelope. A file
// whose prefix matches no harness fails the test rather than being
// skipped — a typo must not silently drop a reproducer.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harnesses.h"

namespace sinclave::fuzz {
namespace {

using HarnessFn = int (*)(const std::uint8_t*, std::size_t);

const std::map<std::string, HarnessFn>& harnesses() {
  static const std::map<std::string, HarnessFn> table = {
      {"fuzz_envelope", run_envelope},
      {"fuzz_secure_record", run_secure_record},
      {"fuzz_persistence", run_persistence},
      {"fuzz_sigstruct_quote", run_sigstruct_quote},
      {"fuzz_status_details", run_status_details},
      {"fuzz_bignum_diff", run_bignum_diff},
      {"fuzz_sha_aead_diff", run_sha_aead_diff},
      {"fuzz_protocol_session", run_protocol_session},
      {"fuzz_replication", run_replication},
  };
  return table;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

TEST(FuzzRegression, ReplaysEveryCheckedInReproducer) {
  const std::filesystem::path dir =
      std::filesystem::path(SINCLAVE_FUZZ_CORPUS_DIR) / "regressions";
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "regression corpus missing: " << dir;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::string prefix = name.substr(0, name.find('-'));
    const auto it = harnesses().find(prefix);
    ASSERT_NE(it, harnesses().end())
        << name << " does not name a harness (prefix " << prefix << ")";
    const std::vector<std::uint8_t> input = read_file(entry.path());
    SCOPED_TRACE(name);
    EXPECT_EQ(it->second(input.data(), input.size()), 0);
    ++replayed;
  }
  // The corpus ships with reproducers for the bugs the fuzz layer found
  // when it landed; an empty directory means the build lost them.
  EXPECT_GE(replayed, 4u) << "regression corpus unexpectedly small";
}

// A deterministic mini-sweep so the harness bodies themselves stay
// exercised by tier-1 even where the corpus has no input for them:
// empty input, every mode byte alone, and every mode byte with a tail
// of 0xFF (maximal counts/lengths) and of 0x00 (zero everything).
TEST(FuzzRegression, SyntheticSweepAllHarnesses) {
  for (const auto& [name, fn] : harnesses()) {
    SCOPED_TRACE(name);
    EXPECT_EQ(fn(nullptr, 0), 0);
    for (std::uint8_t m = 0; m < 16; ++m) {
      std::vector<std::uint8_t> just_mode{m};
      EXPECT_EQ(fn(just_mode.data(), just_mode.size()), 0);
      std::vector<std::uint8_t> ones(41, 0xFF);
      ones[0] = m;
      EXPECT_EQ(fn(ones.data(), ones.size()), 0);
      std::vector<std::uint8_t> zeros(41, 0x00);
      zeros[0] = m;
      EXPECT_EQ(fn(zeros.data(), zeros.size()), 0);
    }
  }
}

}  // namespace
}  // namespace sinclave::fuzz
