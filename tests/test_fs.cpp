// Tests for the encrypted volume: confidentiality, integrity under host
// tampering, and the manifest-root completeness binding.
#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/drbg.h"
#include "fs/encrypted_volume.h"

namespace sinclave::fs {
namespace {

crypto::Drbg rng(std::uint64_t seed) {
  return crypto::Drbg::from_seed(seed, "fs-tests");
}

EncryptedVolume make_volume(std::uint64_t seed = 1) {
  auto r = rng(seed);
  const Bytes key = r.generate(32);
  return EncryptedVolume(key, rng(seed + 1000));
}

TEST(EncryptedVolume, WriteReadRoundTrip) {
  auto v = make_volume();
  v.write_file("app/main.py", to_bytes("print('hello')"));
  const auto content = v.read_file("app/main.py");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, to_bytes("print('hello')"));
}

TEST(EncryptedVolume, MissingFileIsNullopt) {
  auto v = make_volume();
  EXPECT_FALSE(v.read_file("nope").has_value());
  EXPECT_FALSE(v.exists("nope"));
}

TEST(EncryptedVolume, OverwriteReplacesContent) {
  auto v = make_volume();
  v.write_file("f", to_bytes("v1"));
  v.write_file("f", to_bytes("v2"));
  EXPECT_EQ(*v.read_file("f"), to_bytes("v2"));
}

TEST(EncryptedVolume, RemoveDeletes) {
  auto v = make_volume();
  v.write_file("f", to_bytes("x"));
  v.remove_file("f");
  EXPECT_FALSE(v.exists("f"));
}

TEST(EncryptedVolume, ListIsSortedAndComplete) {
  auto v = make_volume();
  v.write_file("b", {});
  v.write_file("a", {});
  v.write_file("c", {});
  EXPECT_EQ(v.list_files(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(EncryptedVolume, PlaintextNeverOnHost) {
  auto v = make_volume();
  const std::string secret = "API_KEY=supersecret";
  v.write_file("config", to_bytes(secret));
  const Bytes& blob = v.host_blob("config");
  const std::string hay(blob.begin(), blob.end());
  EXPECT_EQ(hay.find("supersecret"), std::string::npos);
}

TEST(EncryptedVolume, HostTamperingDetected) {
  auto v = make_volume();
  v.write_file("f", to_bytes("data"));
  v.host_blob("f")[20] ^= 1;
  EXPECT_FALSE(v.read_file("f").has_value());
}

TEST(EncryptedVolume, HostTruncationDetected) {
  auto v = make_volume();
  v.write_file("f", to_bytes("data"));
  v.host_blob("f").pop_back();
  EXPECT_FALSE(v.read_file("f").has_value());
  v.host_replace_blob("f", Bytes(4, 0));  // shorter than a nonce
  EXPECT_FALSE(v.read_file("f").has_value());
}

TEST(EncryptedVolume, BlobSwapDetected) {
  // The file name is associated data: moving ciphertext between names must
  // fail even though the blob itself is authentic.
  auto v = make_volume();
  v.write_file("allowed_users", to_bytes("alice"));
  v.write_file("blocked_users", to_bytes("mallory"));
  const Bytes blocked = v.host_blob("blocked_users");
  v.host_replace_blob("allowed_users", blocked);
  EXPECT_FALSE(v.read_file("allowed_users").has_value());
}

TEST(EncryptedVolume, WrongKeyCannotRead) {
  auto v = make_volume(7);
  v.write_file("f", to_bytes("data"));
  auto r = rng(99);
  EncryptedVolume stolen = EncryptedVolume::adopt(
      r.generate(32), rng(100), v.host_export());
  EXPECT_FALSE(stolen.read_file("f").has_value());
}

TEST(EncryptedVolume, AdoptWithCorrectKeyReads) {
  auto r = rng(8);
  const Bytes key = r.generate(32);
  EncryptedVolume original(key, rng(9));
  original.write_file("f", to_bytes("content"));
  EncryptedVolume reopened =
      EncryptedVolume::adopt(key, rng(10), original.host_export());
  EXPECT_EQ(*reopened.read_file("f"), to_bytes("content"));
}

TEST(Manifest, DeterministicAcrossEncryptions) {
  // The manifest root binds plaintext content, not ciphertext: two volumes
  // with identical files but different nonces/keys agree.
  auto v1 = make_volume(20);
  auto v2 = make_volume(30);
  for (auto* v : {&v1, &v2}) {
    v->write_file("a", to_bytes("1"));
    v->write_file("b", to_bytes("2"));
  }
  EXPECT_EQ(v1.manifest_root(), v2.manifest_root());
}

TEST(Manifest, SensitiveToContentAndNames) {
  auto v1 = make_volume(21);
  v1.write_file("a", to_bytes("1"));
  const Hash256 root1 = v1.manifest_root();

  v1.write_file("a", to_bytes("2"));
  const Hash256 root_changed = v1.manifest_root();
  EXPECT_NE(root1, root_changed);

  auto v2 = make_volume(22);
  v2.write_file("b", to_bytes("1"));  // same content, different name
  EXPECT_NE(root1, v2.manifest_root());
}

TEST(Manifest, SensitiveToAddedAndRemovedFiles) {
  auto v = make_volume(23);
  v.write_file("a", to_bytes("1"));
  const Hash256 one = v.manifest_root();
  v.write_file("b", to_bytes("2"));
  EXPECT_NE(v.manifest_root(), one);
  v.remove_file("b");
  EXPECT_EQ(v.manifest_root(), one);
}

TEST(Manifest, TamperedVolumeThrows) {
  auto v = make_volume(24);
  v.write_file("a", to_bytes("1"));
  v.host_blob("a").back() ^= 1;
  EXPECT_THROW(v.manifest_root(), Error);
}

TEST(Manifest, EmptyVolumeHasStableRoot) {
  EXPECT_EQ(make_volume(25).manifest_root(), make_volume(26).manifest_root());
}

TEST(EncryptedVolume, TotalBytesCountsPlaintext) {
  auto v = make_volume(27);
  v.write_file("a", Bytes(100, 1));
  v.write_file("b", Bytes(28, 2));
  EXPECT_EQ(v.total_plaintext_bytes(), 128u);
}

}  // namespace
}  // namespace sinclave::fs
