// Tests for the confidential-VM extension (§4.4's closing paragraph):
// launch measurement resumability, the VM reuse attack against baseline
// digest pinning, and its defeat by singleton VMs.
#include <gtest/gtest.h>

#include "common/error.h"
#include "cvm/confidential_vm.h"

namespace sinclave::cvm {
namespace {

crypto::Drbg rng(std::uint64_t seed) {
  return crypto::Drbg::from_seed(seed, "cvm-tests");
}

// --- launch measurement ---

TEST(LaunchMeasurement, DeterministicPerImage) {
  const VmImage img = VmImage::synthetic("vm-a", 64 << 10);
  LaunchMeasurement a, b;
  a.measure_image(img);
  b.measure_image(img);
  EXPECT_EQ(a.finalize(), b.finalize());
}

TEST(LaunchMeasurement, SensitiveToEveryComponent) {
  const VmImage base = VmImage::synthetic("vm-b", 64 << 10);
  LaunchMeasurement ref;
  ref.measure_image(base);
  const Hash256 reference = ref.finalize();

  auto digest_of = [](const VmImage& img) {
    LaunchMeasurement m;
    m.measure_image(img);
    return m.finalize();
  };

  VmImage fw = base;
  fw.firmware[0] ^= 1;
  EXPECT_NE(digest_of(fw), reference);
  VmImage kn = base;
  kn.kernel.back() ^= 1;
  EXPECT_NE(digest_of(kn), reference);
  VmImage ird = base;
  ird.initrd[5] ^= 1;
  EXPECT_NE(digest_of(ird), reference);
  VmImage cmd = base;
  cmd.cmdline += " init=/bin/sh";  // the classic boot-param attack
  EXPECT_NE(digest_of(cmd), reference);
}

TEST(LaunchMeasurement, RecordBoundariesMatter) {
  // "ab" + "c" must differ from "a" + "bc": records are framed, not
  // concatenated raw.
  LaunchMeasurement a, b;
  a.record("k", to_bytes("ab"));
  a.record("k", to_bytes("c"));
  b.record("k", to_bytes("a"));
  b.record("k", to_bytes("bc"));
  EXPECT_NE(a.finalize(), b.finalize());
}

TEST(LaunchMeasurement, ResumeEqualsContinuous) {
  const VmImage img = VmImage::synthetic("vm-c", 32 << 10);
  VmIdBlock block;
  block.token = core::AttestationToken::from_view(Bytes(32, 2));
  block.verifier_id = Hash256::from_view(Bytes(32, 3));

  LaunchMeasurement continuous;
  continuous.measure_image(img);
  continuous.measure_id_block(block.render());

  LaunchMeasurement first;
  first.measure_image(img);
  LaunchMeasurement second = LaunchMeasurement::resume(first.export_state());
  second.measure_id_block(block.render());

  EXPECT_EQ(second.finalize(), continuous.finalize());
}

TEST(VmIdBlock, RenderParseRoundTrip) {
  VmIdBlock block;
  auto r = rng(1);
  r.generate(block.token.data.data(), 32);
  r.generate(block.verifier_id.data.data(), 32);
  const auto parsed = VmIdBlock::parse(block.render());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, block);
  EXPECT_FALSE(VmIdBlock::parse({}).has_value());
  EXPECT_THROW(VmIdBlock::parse(Bytes(72, 1)), ParseError);
}

// --- secure processor ---

class CvmTest : public ::testing::Test {
 protected:
  CvmTest()
      : sp_(rng(10), 1024),
        verifier_(rng(11)),
        image_(VmImage::synthetic("victim-vm", 128 << 10)) {
    verifier_.trust_platform(sp_.platform_key());
  }

  Hash256 plain_digest() {
    LaunchMeasurement m;
    m.measure_image(image_);
    return m.finalize();
  }

  crypto::Sha256State base_digest() {
    LaunchMeasurement m;
    m.measure_image(image_);
    return m.export_state();
  }

  SecureProcessor sp_;
  VmVerifier verifier_;
  VmImage image_;
};

TEST_F(CvmTest, LaunchAndAttest) {
  const auto vm = sp_.launch(image_);
  EXPECT_EQ(sp_.launch_digest(vm), plain_digest());
  const VmReport report = sp_.attest(vm, {});
  EXPECT_EQ(report.launch_digest, plain_digest());
  EXPECT_EQ(VmReport::deserialize(report.serialize()), report);
}

TEST_F(CvmTest, TerminatedVmCannotAttest) {
  const auto vm = sp_.launch(image_);
  sp_.terminate(vm);
  EXPECT_THROW(sp_.attest(vm, {}), Error);
  EXPECT_THROW(sp_.terminate(vm), Error);
}

TEST_F(CvmTest, BaselineVerifiesPinnedDigest) {
  verifier_.register_baseline("vm-session", plain_digest());
  const auto vm = sp_.launch(image_);
  EXPECT_EQ(verifier_.verify("vm-session", sp_.attest(vm, {}), std::nullopt),
            Verdict::kOk);
}

TEST_F(CvmTest, BaselineRejectsUnknownPlatformAndTampering) {
  verifier_.register_baseline("vm-session", plain_digest());
  const auto vm = sp_.launch(image_);
  VmReport report = sp_.attest(vm, {});

  SecureProcessor rogue(rng(12), 1024);  // untrusted platform
  const auto rogue_vm = rogue.launch(image_);
  EXPECT_EQ(verifier_.verify("vm-session", rogue.attest(rogue_vm, {}),
                             std::nullopt),
            Verdict::kSignerMismatch);

  report.report_data.data[0] ^= 1;
  EXPECT_EQ(verifier_.verify("vm-session", report, std::nullopt),
            Verdict::kBadSignature);
}

// --- the reuse attack, VM edition ---

TEST_F(CvmTest, BaselineAcceptsClonedVm) {
  // The vulnerability: the adversary copies the victim's disk/VM image and
  // boots it themselves. Baseline attestation cannot tell the clone from
  // the original — it verifies again and again.
  verifier_.register_baseline("vm-session", plain_digest());

  const auto original = sp_.launch(image_);
  EXPECT_EQ(verifier_.verify("vm-session", sp_.attest(original, {}),
                             std::nullopt),
            Verdict::kOk);

  const VmImage clone = image_;  // bit-identical copy
  const auto cloned_vm = sp_.launch(clone);
  EXPECT_EQ(verifier_.verify("vm-session", sp_.attest(cloned_vm, {}),
                             std::nullopt),
            Verdict::kOk)
      << "baseline accepts the clone - the documented weakness";
}

TEST_F(CvmTest, SingletonVmFlowSucceedsOnce) {
  verifier_.register_singleton("vm-session", base_digest());
  const auto block = verifier_.issue_id_block("vm-session");
  ASSERT_TRUE(block.has_value());

  const auto vm = sp_.launch(image_, block->render());
  const VmReport report = sp_.attest(vm, {});
  EXPECT_EQ(verifier_.verify("vm-session", report, block->token),
            Verdict::kOk);
  // Exactly once: the token is consumed.
  EXPECT_EQ(verifier_.verify("vm-session", report, block->token),
            Verdict::kTokenReused);
  EXPECT_EQ(verifier_.tokens_outstanding(), 0u);
}

TEST_F(CvmTest, SingletonBlocksClonedVm) {
  verifier_.register_singleton("vm-session", base_digest());
  const auto block = verifier_.issue_id_block("vm-session");
  ASSERT_TRUE(block.has_value());
  const auto vm = sp_.launch(image_, block->render());
  ASSERT_EQ(verifier_.verify("vm-session", sp_.attest(vm, {}), block->token),
            Verdict::kOk);

  // Clone WITH the same id block: same digest, but the token is spent.
  const auto clone_with_block = sp_.launch(image_, block->render());
  EXPECT_EQ(verifier_.verify("vm-session", sp_.attest(clone_with_block, {}),
                             block->token),
            Verdict::kTokenReused);

  // Clone WITHOUT an id block: digest does not match any expected value.
  const auto fresh = verifier_.issue_id_block("vm-session");
  const auto clone_plain = sp_.launch(image_);
  EXPECT_EQ(verifier_.verify("vm-session", sp_.attest(clone_plain, {}),
                             fresh->token),
            Verdict::kMeasurementMismatch);
}

TEST_F(CvmTest, SingletonTokensIndividualizeDigests) {
  verifier_.register_singleton("vm-session", base_digest());
  const auto a = verifier_.issue_id_block("vm-session");
  const auto b = verifier_.issue_id_block("vm-session");
  const auto vm_a = sp_.launch(image_, a->render());
  const auto vm_b = sp_.launch(image_, b->render());
  EXPECT_NE(sp_.launch_digest(vm_a), sp_.launch_digest(vm_b));
}

TEST_F(CvmTest, SingletonRejectsPatchedImageEvenWithValidToken) {
  verifier_.register_singleton("vm-session", base_digest());
  const auto block = verifier_.issue_id_block("vm-session");
  VmImage patched = image_;
  patched.cmdline += " init=/bin/sh";
  const auto vm = sp_.launch(patched, block->render());
  EXPECT_EQ(verifier_.verify("vm-session", sp_.attest(vm, {}), block->token),
            Verdict::kMeasurementMismatch);
}

TEST_F(CvmTest, IssueIdBlockOnlyForSingletonSessions) {
  verifier_.register_baseline("base-session", plain_digest());
  EXPECT_FALSE(verifier_.issue_id_block("base-session").has_value());
  EXPECT_FALSE(verifier_.issue_id_block("unknown").has_value());
}

TEST_F(CvmTest, VerifyUnknownSessionAndMissingToken) {
  verifier_.register_singleton("vm-session", base_digest());
  const auto block = verifier_.issue_id_block("vm-session");
  const auto vm = sp_.launch(image_, block->render());
  const VmReport report = sp_.attest(vm, {});
  EXPECT_EQ(verifier_.verify("nope", report, block->token),
            Verdict::kPolicyViolation);
  EXPECT_EQ(verifier_.verify("vm-session", report, std::nullopt),
            Verdict::kTokenUnknown);
  const auto foreign =
      core::AttestationToken::from_view(Bytes(32, 0x77));
  EXPECT_EQ(verifier_.verify("vm-session", report, foreign),
            Verdict::kTokenUnknown);
}

}  // namespace
}  // namespace sinclave::cvm
