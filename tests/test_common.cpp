// Unit tests for src/common: hex codec, constant-time compare, serializers.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/error.h"
#include "common/serial.h"

namespace sinclave {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), Error);
}

TEST(Hex, RejectsNonHexDigit) {
  EXPECT_THROW(from_hex("zz"), Error);
}

TEST(CtEqual, EqualBuffers) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, a));
}

TEST(CtEqual, DifferentContent) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 4};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, DifferentLength) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2};
  EXPECT_FALSE(ct_equal(a, b));
}

TEST(CtEqual, EmptyBuffersEqual) {
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(FixedBytes, ZeroDetection) {
  Hash256 h;
  EXPECT_TRUE(h.is_zero());
  h.data[31] = 1;
  EXPECT_FALSE(h.is_zero());
}

TEST(FixedBytes, FromViewTruncatesAndPads) {
  const Bytes longer(40, 0xaa);
  const auto h = Hash256::from_view(longer);
  EXPECT_EQ(h.data[0], 0xaa);
  EXPECT_EQ(h.data[31], 0xaa);

  const Bytes shorter(4, 0xbb);
  const auto h2 = Hash256::from_view(shorter);
  EXPECT_EQ(h2.data[3], 0xbb);
  EXPECT_EQ(h2.data[4], 0x00);
}

TEST(FixedBytes, Ordering) {
  Hash256 a, b;
  b.data[0] = 1;
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(Concat, JoinsParts) {
  const Bytes a = {1, 2};
  const Bytes b = {};
  const Bytes c = {3};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Serial, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x0123456789abcdefULL);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serial, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(to_hex(w.data()), "04030201");
}

TEST(Serial, LengthPrefixedBytes) {
  ByteWriter w;
  w.bytes(Bytes{9, 8, 7});
  w.str("hi");

  ByteReader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "hi");
  r.expect_done();
}

TEST(Serial, TruncatedInputThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(Serial, TrailingBytesDetected) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data());
  r.u16();
  EXPECT_THROW(r.expect_done(), ParseError);
}

TEST(Serial, BadLengthPrefixThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.data());
  EXPECT_THROW(r.bytes(), ParseError);
}

TEST(Serial, ZerosPadding) {
  ByteWriter w;
  w.zeros(5);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.data(), Bytes(5, 0));
}

TEST(Serial, FixedRead) {
  ByteWriter w;
  Bytes h(32, 0xcd);
  w.raw(h);
  ByteReader r(w.data());
  EXPECT_EQ(r.fixed<32>().to_vector(), h);
}

TEST(Verdict, Names) {
  EXPECT_STREQ(to_string(Verdict::kOk), "ok");
  EXPECT_STREQ(to_string(Verdict::kTokenReused), "token-reused");
  EXPECT_STREQ(to_string(Verdict::kMeasurementMismatch),
               "measurement-mismatch");
}

}  // namespace
}  // namespace sinclave
