// Replicated-cluster failover suite (ISSUE 10): exactly-once token spend
// through leader kill, election liveness under scripted partitions, the
// sealed-log rollback gate on restart, and client leader-following. Every
// test closes the spend ledger across ALL running replicas — a double
// spend anywhere in the cluster is a test failure, not a statistic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cas/client.h"
#include "cas/replication.h"
#include "common/error.h"
#include "common/status.h"
#include "net/fault_plan.h"
#include "workload/cluster.h"

namespace sinclave::workload {
namespace {

using namespace std::chrono_literals;

ClusterBedConfig fast_config(std::uint64_t seed) {
  ClusterBedConfig config;
  config.seed = seed;
  config.nodes = 3;
  // Tight propose timeout: partition tests should observe a typed
  // kUnavailable promptly, not wait out the production default.
  config.raft.propose_timeout = 500ms;
  return config;
}

TEST(Cluster, ElectsLeaderReplicatesAndConverges) {
  ClusterBed bed(fast_config(11));
  const std::size_t leader = bed.bootstrap();
  ASSERT_LT(leader, bed.size());

  cas::CasClient client = bed.make_client(leader);
  const std::size_t ops = 4;
  std::size_t spent = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const ClusterBed::SpendOutcome got = bed.attested_spend(client, i);
    ASSERT_TRUE(got.prepared.ok())
        << got.prepared.instance.status.message() << " " << got.prepared.error;
    EXPECT_TRUE(got.spend.attested)
        << to_string(got.spend.reject) << " " << got.spend.error;
    if (got.spent()) ++spent;
  }
  EXPECT_EQ(spent, ops);

  // Every replica — followers included — must apply the same spends.
  const ClusterBed::SpendAudit audit = bed.audit_spends(spent, 2000ms);
  EXPECT_TRUE(audit.converged) << audit.detail;
  ASSERT_EQ(audit.used.size(), 3u);

  // Commit/apply convergence is visible in the raft stats too.
  const std::uint64_t leader_commit =
      bed.node(leader).raft().stats().commit_index;
  EXPECT_GT(leader_commit, 0u);
}

TEST(Cluster, ReusedTokenIsRejectedEverywhere) {
  ClusterBed bed(fast_config(12));
  const std::size_t leader = bed.bootstrap();
  cas::CasClient client = bed.make_client(leader);

  const ClusterBed::PreparedToken prepared = bed.prepare_token(client);
  ASSERT_TRUE(prepared.ok());
  const ClusterBed::AttestedSpend first =
      bed.spend_once(prepared, 1, bed.address(leader));
  ASSERT_TRUE(first.attested) << to_string(first.reject) << " " << first.error;

  // The same one-time token replayed over a fresh channel must be
  // refused — replication made the first spend durable, so this holds at
  // the leader and (after failover) everywhere. The rejection is the
  // deliberately generic kAttestationRejected: verification outcomes give
  // probing clients no token-state oracle.
  const ClusterBed::AttestedSpend replay =
      bed.spend_once(prepared, 2, bed.address(leader));
  EXPECT_FALSE(replay.attested);
  EXPECT_EQ(replay.reject, StatusCode::kAttestationRejected) << replay.error;

  const ClusterBed::SpendAudit audit = bed.audit_spends(1, 2000ms);
  EXPECT_TRUE(audit.converged) << audit.detail;
}

TEST(Cluster, ClientPointedAtFollowerFollowsLeaderHint) {
  ClusterBed bed(fast_config(13));
  const std::size_t leader = bed.bootstrap();
  const std::size_t follower = (leader + 1) % bed.size();

  // Primary = a follower: the first attempt bounces kNotLeader with a
  // leader hint and the SDK re-routes immediately — no backoff sleep, so
  // a generous attempt budget is not needed.
  cas::CasClient client = bed.make_client(follower);
  const ClusterBed::SpendOutcome got = bed.attested_spend(client, 99);
  ASSERT_TRUE(got.prepared.ok()) << got.prepared.instance.status.message();
  EXPECT_TRUE(got.spend.attested) << to_string(got.spend.reject);

  const cas::CasClient::Stats stats = client.stats();
  EXPECT_GE(stats.leader_redirects, 1u);
  EXPECT_EQ(client.current_address(), bed.address(leader));

  const ClusterBed::SpendAudit audit = bed.audit_spends(1, 2000ms);
  EXPECT_TRUE(audit.converged) << audit.detail;
}

TEST(Cluster, ReplayStormAcrossLeaderKillSpendsExactlyOnce) {
  ClusterBed bed(fast_config(14));
  const std::size_t leader = bed.bootstrap();
  cas::CasClient client = bed.make_client(leader);

  // Prepare the storm while the original leader is healthy: each token
  // gets `racers` competing channels, each with its own quote.
  const std::size_t tokens = 4;
  const std::size_t racers = 2;
  std::vector<ClusterBed::PreparedToken> prepared;
  for (std::size_t t = 0; t < tokens; ++t) {
    prepared.push_back(bed.prepare_token(client));
    ASSERT_TRUE(prepared.back().ok())
        << prepared.back().instance.status.message();
  }

  std::vector<std::atomic<int>> accepted(tokens);
  std::vector<std::atomic<int>> reused(tokens);
  std::vector<std::thread> threads;
  const std::string target = bed.address(leader);
  for (std::size_t t = 0; t < tokens; ++t) {
    for (std::size_t r = 0; r < racers; ++r) {
      threads.emplace_back([&, t, r] {
        const ClusterBed::AttestedSpend got =
            bed.spend_once(prepared[t], t * 100 + r, target);
        if (got.attested) accepted[t].fetch_add(1);
        // A non-routing rejection of a well-formed racer means the token
        // was already spent (the server keeps reuse rejections generic).
        if (!got.attested && got.error.empty() &&
            got.reject != StatusCode::kNotLeader &&
            got.reject != StatusCode::kUnavailable)
          reused[t].fetch_add(1);
      });
    }
  }
  // Kill the leader mid-storm: racers see accepted, kTokenReused, a typed
  // routing rejection, or a transport error — never a double acceptance.
  std::this_thread::sleep_for(3ms);
  bed.node(leader).stop();
  for (std::thread& th : threads) th.join();

  // Recovery round at the successor: every token not yet spent must spend
  // exactly once; every token already spent (including ghost spends by
  // the dying leader) must be refused as reused.
  const auto new_leader = bed.wait_for_leader(2000ms);
  ASSERT_TRUE(new_leader.has_value()) << "no successor elected";
  std::size_t spent = 0;
  for (std::size_t t = 0; t < tokens; ++t) {
    ASSERT_LE(accepted[t].load(), 1)
        << "token " << t << " accepted more than once during the storm";
    if (accepted[t].load() == 1 || reused[t].load() > 0) {
      ++spent;
      continue;
    }
    const ClusterBed::AttestedSpend retry =
        bed.spend_with_retry(prepared[t], 7000 + t, bed.address(*new_leader));
    const bool ghost = !retry.attested &&
                       retry.reject == StatusCode::kAttestationRejected;
    EXPECT_TRUE(retry.attested || ghost)
        << "token " << t << ": " << to_string(retry.reject) << " "
        << retry.error;
    if (retry.attested || ghost) ++spent;
  }
  EXPECT_EQ(spent, tokens);

  // Restart the killed node: it must rejoin, catch up, and agree on the
  // ledger — the sealed log forbids it from forgetting any spend.
  bed.node(leader).start();
  const ClusterBed::SpendAudit audit = bed.audit_spends(spent, 5000ms);
  EXPECT_TRUE(audit.converged) << audit.detail;
  ASSERT_EQ(audit.used.size(), 3u);
}

TEST(Cluster, TotalPartitionHaltsCommitsThenHealsAndRecovers) {
  ClusterBedConfig config = fast_config(15);
  config.raft.propose_timeout = 250ms;
  ClusterBed bed(config);
  const std::size_t leader = bed.bootstrap();

  // Script a full-mesh partition: every inter-node request dropped. No
  // majority is reachable from anywhere, so elections stall and the
  // leader cannot commit — proposals must fail *typed* within the propose
  // timeout, never hang.
  net::FaultPlan plan;
  plan.seed = 15;
  for (std::size_t i = 0; i < bed.size(); ++i) {
    net::FaultWindow window;
    window.address_prefix = bed.address(i);
    window.faults.drop_request = 1.0;
    plan.windows.push_back(window);
  }
  bed.network().set_fault_plan(plan);

  cas::Policy partitioned = bed.default_policy();
  partitioned.session_name = "partitioned-install";
  const Status blocked = bed.node(leader).install_policy(partitioned);
  EXPECT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.code == StatusCode::kUnavailable ||
              blocked.code == StatusCode::kNotLeader)
      << to_string(blocked.code);

  // Heal: a leader must re-emerge within an election bound and the same
  // install must replicate cluster-wide.
  bed.network().set_fault_plan({});
  const auto healed = bed.wait_for_leader(2000ms);
  ASSERT_TRUE(healed.has_value()) << "no leader after heal";
  const Status installed = bed.install_policy(partitioned, 2000ms);
  EXPECT_TRUE(installed.ok()) << installed.message();

  cas::CasClient client = bed.make_client(*healed);
  const ClusterBed::SpendOutcome got = bed.attested_spend(client, 5);
  ASSERT_TRUE(got.prepared.ok()) << got.prepared.instance.status.message();
  EXPECT_TRUE(got.spend.attested) << to_string(got.spend.reject);
}

TEST(Cluster, IsolatedFollowerRejoinsAndCatchesUp) {
  ClusterBed bed(fast_config(16));
  const std::size_t leader = bed.bootstrap();
  const std::size_t isolated = (leader + 1) % bed.size();

  // Drop everything addressed to one follower: the remaining majority
  // keeps serving; the isolated node's election attempts cannot win (its
  // log falls behind) and must not wedge the cluster.
  net::FaultPlan plan;
  plan.seed = 16;
  net::FaultWindow window;
  window.address_prefix = bed.address(isolated);
  window.faults.drop_request = 1.0;
  plan.windows.push_back(window);
  bed.network().set_fault_plan(plan);

  cas::CasClient client = bed.make_client(leader);
  std::size_t spent = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const ClusterBed::SpendOutcome got = bed.attested_spend(client, 40 + i);
    ASSERT_TRUE(got.prepared.ok()) << got.prepared.instance.status.message();
    EXPECT_TRUE(got.spent()) << to_string(got.spend.reject);
    if (got.spent()) ++spent;
  }
  EXPECT_EQ(spent, 3u);

  // Heal: the rejoining follower must catch up to the full ledger.
  bed.network().set_fault_plan({});
  const ClusterBed::SpendAudit audit = bed.audit_spends(spent, 5000ms);
  EXPECT_TRUE(audit.converged) << audit.detail;
  ASSERT_EQ(audit.used.size(), 3u);
}

TEST(Cluster, SealedStoreRollbackIsRefusedOnRestart) {
  ClusterBed bed(fast_config(17));
  const std::size_t leader = bed.bootstrap();
  const std::size_t victim = (leader + 1) % bed.size();

  // Snapshot the follower's sealed raft state, then advance it by
  // replicating a spend (every append persists through the monotonic
  // counter).
  const Bytes stale = bed.node(victim).store().blob();
  ASSERT_FALSE(stale.empty());

  cas::CasClient client = bed.make_client(leader);
  const ClusterBed::SpendOutcome got = bed.attested_spend(client, 77);
  ASSERT_TRUE(got.prepared.ok());
  ASSERT_TRUE(got.spend.attested);
  ASSERT_TRUE(bed.audit_spends(1, 2000ms).converged);

  // A restart from the stale blob is a rollback of a spent token — the
  // node must refuse to boot, not rejoin with pre-spend state.
  bed.node(victim).stop();
  bed.node(victim).store().set_blob(stale);
  EXPECT_THROW(bed.node(victim).start(), Error);
  EXPECT_FALSE(bed.node(victim).running());

  // The rest of the cluster is unharmed: majority still serves.
  const ClusterBed::SpendOutcome after = bed.attested_spend(client, 78);
  ASSERT_TRUE(after.prepared.ok())
      << after.prepared.instance.status.message();
  EXPECT_TRUE(after.spend.attested) << to_string(after.spend.reject);
}

}  // namespace
}  // namespace sinclave::workload
