// Tests for the workload models and the testbed fixture backing the
// macro-benchmarks (Fig. 9): both modes complete, starts are counted, and
// the SinClave run consumes exactly one token per enclave start.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <vector>

#include "workload/load_gen.h"
#include "workload/workloads.h"

namespace sinclave::workload {
namespace {

WorkloadSpec tiny_spec(int processes) {
  WorkloadSpec s;
  s.name = "tiny-" + std::to_string(processes);
  s.code_bytes = sgx::kPageSize;
  s.heap_bytes = sgx::kPageSize;
  s.process_count = processes;
  s.file_count = 2;
  s.file_bytes = 1024;
  s.compute_units = 4;
  return s;
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : bed_(TestbedConfig{.seed = 33, .rsa_bits = 1024}) {}
  Testbed bed_;
};

TEST_F(WorkloadTest, BaselineRunCompletes) {
  const auto result = run_workload(bed_, tiny_spec(1),
                                   runtime::RuntimeMode::kBaseline);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.enclaves_started, 1);
  EXPECT_GT(result.total.count(), 0);
}

TEST_F(WorkloadTest, SinclaveRunCompletes) {
  const auto result = run_workload(bed_, tiny_spec(1),
                                   runtime::RuntimeMode::kSinclave);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.enclaves_started, 1);
}

TEST_F(WorkloadTest, MultiProcessCountsStarts) {
  const auto result = run_workload(bed_, tiny_spec(4),
                                   runtime::RuntimeMode::kSinclave);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.enclaves_started, 4);
  EXPECT_EQ(bed_.cas().tokens_used(), 4u);
  EXPECT_EQ(bed_.cas().tokens_outstanding(), 0u);
}

TEST_F(WorkloadTest, BaselineConsumesNoTokens) {
  const auto result = run_workload(bed_, tiny_spec(3),
                                   runtime::RuntimeMode::kBaseline);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(bed_.cas().tokens_used(), 0u);
}

TEST_F(WorkloadTest, RepeatedRunsWork) {
  // The same bed can run a workload repeatedly (benchmark repetitions).
  const WorkloadSpec spec = tiny_spec(2);
  for (int i = 0; i < 3; ++i) {
    const auto b = run_workload(bed_, spec, runtime::RuntimeMode::kBaseline);
    const auto s = run_workload(bed_, spec, runtime::RuntimeMode::kSinclave);
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_TRUE(s.ok) << s.error;
  }
}

TEST_F(WorkloadTest, ShippedSpecsAreWellFormed) {
  for (const auto& spec :
       {python_workload(), openvino_workload(), pytorch_workload()}) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GE(spec.process_count, 1);
    EXPECT_EQ(spec.heap_bytes % sgx::kPageSize, 0u) << spec.name;
    EXPECT_GE(spec.compute_units,
              static_cast<std::uint64_t>(spec.process_count))
        << spec.name;
  }
  // The paper's overhead ordering is driven by starts per run.
  EXPECT_LT(python_workload().process_count,
            openvino_workload().process_count);
  EXPECT_LT(openvino_workload().process_count,
            pytorch_workload().process_count);
}

TEST(LoadGenSchedule, IsAPureFunctionOfTheConfig) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kOpen;
  cfg.logical_clients = 4;
  cfg.requests_per_client = 64;
  cfg.sessions = {"a", "b", "c"};
  cfg.base_seed = 42;
  cfg.mean_interarrival = std::chrono::microseconds(500);

  const auto one = make_schedule(cfg);
  const auto two = make_schedule(cfg);
  ASSERT_EQ(one.size(), 4u);
  ASSERT_EQ(two.size(), 4u);
  for (std::size_t c = 0; c < one.size(); ++c) {
    ASSERT_EQ(one[c].size(), 64u);
    for (std::size_t i = 0; i < one[c].size(); ++i) {
      EXPECT_EQ(one[c][i].session_index, two[c][i].session_index);
      EXPECT_EQ(one[c][i].at, two[c][i].at);
      if (i > 0) EXPECT_GE(one[c][i].at, one[c][i - 1].at);  // time moves on
    }
  }
}

TEST(LoadGenSchedule, SeedAndClientIndexDecorrelateStreams) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kOpen;
  cfg.logical_clients = 2;
  cfg.requests_per_client = 64;
  cfg.sessions = {"a", "b", "c", "d"};
  cfg.base_seed = 1;

  const auto base = make_schedule(cfg);
  cfg.base_seed = 2;
  const auto reseeded = make_schedule(cfg);

  const auto differs = [](const std::vector<ScheduledRequest>& x,
                          const std::vector<ScheduledRequest>& y) {
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i].session_index != y[i].session_index || x[i].at != y[i].at)
        return true;
    return false;
  };
  // A different base seed reshuffles every client; two clients under the
  // same seed do not mirror each other.
  EXPECT_TRUE(differs(base[0], reseeded[0]));
  EXPECT_TRUE(differs(base[0], base[1]));
}

TEST(LoadGenSchedule, ZipfianScheduleIsDeterministic) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kOpen;
  cfg.logical_clients = 4;
  cfg.requests_per_client = 64;
  cfg.sessions = {"hot", "warm", "cool", "cold"};
  cfg.session_dist = SessionDist::kZipfian;
  cfg.zipf_theta = 0.99;
  cfg.base_seed = 7;

  const auto one = make_schedule(cfg);
  const auto two = make_schedule(cfg);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t c = 0; c < one.size(); ++c)
    for (std::size_t i = 0; i < one[c].size(); ++i) {
      EXPECT_EQ(one[c][i].session_index, two[c][i].session_index);
      EXPECT_EQ(one[c][i].at, two[c][i].at);
    }
}

TEST(LoadGenSchedule, ZipfianSkewsTowardLowRanks) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kClosed;
  cfg.clients = 16;
  cfg.requests_per_client = 200;
  cfg.sessions = {"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"};
  cfg.session_dist = SessionDist::kZipfian;
  cfg.zipf_theta = 1.2;
  cfg.base_seed = 11;

  std::array<std::size_t, 8> counts{};
  std::size_t total = 0;
  for (const auto& client : make_schedule(cfg))
    for (const auto& r : client) {
      ASSERT_LT(r.session_index, counts.size());
      ++counts[r.session_index];
      ++total;
    }
  // Rank 0 is the hot session: clearly above the uniform share and far
  // above the coldest rank (with theta=1.2 over 8 ranks its expected
  // share is ~42%).
  EXPECT_GT(counts[0], total / 8 * 2);
  EXPECT_GT(counts[0], counts[7] * 4);
  // Monotone-ish decay head to tail (allow sampling noise in the middle).
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[1], counts[6]);
}

TEST(LoadGenSchedule, UniformAndZipfianDrawDifferentSessions) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kClosed;
  cfg.clients = 2;
  cfg.requests_per_client = 64;
  cfg.sessions = {"a", "b", "c", "d"};
  cfg.base_seed = 3;
  const auto uniform = make_schedule(cfg);
  cfg.session_dist = SessionDist::kZipfian;
  const auto zipf = make_schedule(cfg);
  bool differs = false;
  for (std::size_t c = 0; c < uniform.size() && !differs; ++c)
    for (std::size_t i = 0; i < uniform[c].size(); ++i)
      if (uniform[c][i].session_index != zipf[c][i].session_index) {
        differs = true;
        break;
      }
  EXPECT_TRUE(differs);
}

TEST(LoadGenSchedule, ThinkTimeModelsAreDeterministicAndShaped) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kClosed;
  cfg.clients = 4;
  cfg.requests_per_client = 64;
  cfg.sessions = {"a", "b"};
  cfg.base_seed = 21;
  cfg.mean_think = std::chrono::microseconds(500);

  // kNone: no gaps, and bit-identical to a config that never heard of
  // think time (the field defaults keep seed-era schedules unchanged).
  cfg.think_time = ThinkTime::kNone;
  const auto none = make_schedule(cfg);
  for (const auto& client : none)
    for (const auto& r : client) EXPECT_EQ(r.think.count(), 0);

  // kConstant: every gap is exactly the configured mean.
  cfg.think_time = ThinkTime::kConstant;
  const auto constant = make_schedule(cfg);
  for (const auto& client : constant)
    for (const auto& r : client)
      EXPECT_EQ(r.think, std::chrono::nanoseconds(500'000));
  // ...and the session choices are unchanged by enabling think time.
  for (std::size_t c = 0; c < none.size(); ++c)
    for (std::size_t i = 0; i < none[c].size(); ++i)
      EXPECT_EQ(none[c][i].session_index, constant[c][i].session_index);

  // kExponential: schedule-deterministic (same config -> same gaps),
  // strictly positive, varying, with a mean in the right ballpark.
  cfg.think_time = ThinkTime::kExponential;
  const auto one = make_schedule(cfg);
  const auto two = make_schedule(cfg);
  double sum_ns = 0.0;
  std::size_t n = 0;
  bool varies = false;
  for (std::size_t c = 0; c < one.size(); ++c)
    for (std::size_t i = 0; i < one[c].size(); ++i) {
      EXPECT_EQ(one[c][i].think, two[c][i].think);
      EXPECT_GE(one[c][i].think.count(), 0);
      if (i > 0 && one[c][i].think != one[c][i - 1].think) varies = true;
      sum_ns += static_cast<double>(one[c][i].think.count());
      ++n;
    }
  EXPECT_TRUE(varies);
  const double mean_us = sum_ns / static_cast<double>(n) / 1e3;
  EXPECT_GT(mean_us, 250.0);  // 256 draws: mean within ~2x of 500us
  EXPECT_LT(mean_us, 1000.0);
}

TEST(LoadGenSchedule, ThinkTimeNeverLeaksIntoOpenLoop) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kOpen;
  cfg.logical_clients = 3;
  cfg.requests_per_client = 16;
  cfg.sessions = {"a"};
  cfg.think_time = ThinkTime::kExponential;  // ignored in open loop
  cfg.mean_think = std::chrono::microseconds(500);
  for (const auto& client : make_schedule(cfg))
    for (const auto& r : client) EXPECT_EQ(r.think.count(), 0);
}

TEST(LoadGenSchedule, ClosedLoopArrivesImmediatelyButStaysSeeded) {
  LoadGenConfig cfg;
  cfg.mode = LoadMode::kClosed;
  cfg.clients = 3;
  cfg.requests_per_client = 16;
  cfg.sessions = {"a", "b"};
  cfg.base_seed = 9;
  const auto schedule = make_schedule(cfg);
  ASSERT_EQ(schedule.size(), 3u);
  bool used_b = false;
  for (const auto& client : schedule)
    for (const auto& r : client) {
      EXPECT_EQ(r.at.count(), 0);  // closed loop: back-to-back
      used_b |= r.session_index == 1;
    }
  EXPECT_TRUE(used_b);  // sessions really are drawn from the RNG
  EXPECT_EQ(make_schedule(cfg)[2][7].session_index,
            schedule[2][7].session_index);
}

TEST_F(WorkloadTest, TestbedChildRngsAreIndependent) {
  auto a = bed_.child_rng("x");
  auto b = bed_.child_rng("x");
  EXPECT_NE(a.generate(16), b.generate(16));  // stateful parent entropy
}

TEST_F(WorkloadTest, TestbedsAreReproduciblePerSeed) {
  Testbed one(TestbedConfig{.seed = 77, .rsa_bits = 1024});
  Testbed two(TestbedConfig{.seed = 77, .rsa_bits = 1024});
  EXPECT_EQ(one.user_signer().public_key(), two.user_signer().public_key());
  EXPECT_EQ(one.cas().verifier_id(), two.cas().verifier_id());
}

}  // namespace
}  // namespace sinclave::workload
