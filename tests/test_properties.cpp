// Cross-module property sweeps (parameterized): AEAD over payload sizes,
// secure channel over message sizes, big-integer division over operand
// widths, and end-to-end singleton prediction over token patterns.
#include <gtest/gtest.h>

#include "core/predictor.h"
#include "core/signer.h"
#include "crypto/aead.h"
#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "net/secure_channel.h"

namespace sinclave {
namespace {

// --- AEAD payload-size sweep ---

class AeadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadSizes, SealOpenRoundTripAndTamperDetection) {
  crypto::Drbg rng = crypto::Drbg::from_seed(GetParam(), "aead-sizes");
  const crypto::Aead aead(rng.generate(32));
  const Bytes nonce = rng.generate(12);
  const Bytes msg = rng.generate(GetParam());
  const Bytes ad = rng.generate(GetParam() % 37);

  Bytes sealed = aead.seal(nonce, msg, ad);
  ASSERT_EQ(sealed.size(), msg.size() + crypto::kAeadTagSize);
  const auto opened = aead.open(nonce, sealed, ad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);

  // Any single bit flip anywhere must be caught.
  const std::size_t bit = (GetParam() * 7919) % (sealed.size() * 8);
  sealed[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  EXPECT_FALSE(aead.open(nonce, sealed, ad).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadSizes,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255,
                                           256, 1000, 4096, 65536));

// --- secure channel message-size sweep ---

class ChannelSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelSizes, EncryptedEchoRoundTrip) {
  crypto::Drbg setup = crypto::Drbg::from_seed(7, "channel-sizes");
  const auto identity = crypto::RsaKeyPair::generate(setup, 1024);
  net::SimNetwork net;
  net::SecureServer server(
      &identity, crypto::Drbg::from_seed(8, "srv"),
      [](ByteView, ByteView, std::uint64_t, StatusCode*) {
        return std::optional<Bytes>{Bytes{}};
      },
      [](std::uint64_t, ByteView plaintext) {
        return Bytes{plaintext.begin(), plaintext.end()};
      });
  net.listen("svc", [&](ByteView raw) { return server.handle(raw); });

  net::SecureClient client(crypto::Drbg::from_seed(9 + GetParam(), "cli"));
  ASSERT_TRUE(client.connect(net.connect("svc"), identity.public_key(), {})
                  .has_value());
  crypto::Drbg msg_rng = crypto::Drbg::from_seed(GetParam(), "msg");
  const Bytes msg = msg_rng.generate(GetParam());
  EXPECT_EQ(client.call(msg), msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelSizes,
                         ::testing::Values(0, 1, 100, 4096, 100000));

// --- big-integer division width sweep ---

struct DivWidths {
  std::size_t dividend_bytes;
  std::size_t divisor_bytes;
};

class BigIntDivision : public ::testing::TestWithParam<DivWidths> {};

TEST_P(BigIntDivision, QuotientRemainderInvariant) {
  const auto& w = GetParam();
  crypto::Drbg rng = crypto::Drbg::from_seed(
      w.dividend_bytes * 1000 + w.divisor_bytes, "div-widths");
  for (int i = 0; i < 10; ++i) {
    const auto a = crypto::BigInt::from_bytes_be(rng.generate(w.dividend_bytes));
    auto b = crypto::BigInt::from_bytes_be(rng.generate(w.divisor_bytes));
    if (b.is_zero()) b = crypto::BigInt{1};
    const auto [q, r] = crypto::BigInt::div_mod(a, b);
    EXPECT_TRUE(r < b);
    EXPECT_EQ(q * b + r, a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, BigIntDivision,
    ::testing::Values(DivWidths{1, 1}, DivWidths{8, 8}, DivWidths{16, 8},
                      DivWidths{64, 8}, DivWidths{64, 32}, DivWidths{128, 64},
                      DivWidths{384, 192},  // RSA-3072 CRT shape
                      DivWidths{8, 64}));   // dividend < divisor

// --- singleton prediction over token patterns ---

class TokenPatterns : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(TokenPatterns, PredictionIsInjectiveInToken) {
  // Structured/adversarial token patterns (all-zero is not issued by the
  // verifier but must still predict consistently and uniquely).
  static crypto::Drbg key_rng = crypto::Drbg::from_seed(11, "token-patterns");
  static const auto key = crypto::RsaKeyPair::generate(key_rng, 1024);
  static const core::EnclaveImage image =
      core::EnclaveImage::synthetic("tokens", 4096, 4096);
  static const core::Signer signer(&key);
  static const core::BaseHash base = signer.sign_sinclave(image).base_hash;

  core::InstancePage a, b;
  a.token = core::AttestationToken::from_view(Bytes(32, GetParam()));
  b.token = core::AttestationToken::from_view(Bytes(32, GetParam()));
  b.token.data[31] ^= 0x01;  // differ in one bit
  a.verifier_id = b.verifier_id = Hash256::from_view(Bytes(32, 0x55));

  EXPECT_EQ(core::MeasurementPredictor::predict(base, a),
            core::MeasurementPredictor::predict(base, a));
  EXPECT_NE(core::MeasurementPredictor::predict(base, a),
            core::MeasurementPredictor::predict(base, b));
  EXPECT_NE(core::MeasurementPredictor::predict(base, a),
            core::MeasurementPredictor::predict_common(base));
}

INSTANTIATE_TEST_SUITE_P(Patterns, TokenPatterns,
                         ::testing::Values(0x00, 0x01, 0x55, 0x80, 0xaa,
                                           0xff));

}  // namespace
}  // namespace sinclave
