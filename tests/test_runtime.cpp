// Unit tests for the runtime module: the starter (enclave construction),
// the program registry, and EnclaveRuntime failure stages that the
// integration suite does not reach.
#include <gtest/gtest.h>

#include "core/on_demand.h"
#include "core/predictor.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/enclave_runtime.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

namespace sinclave::runtime {
namespace {

class StarterTest : public ::testing::Test {
 protected:
  StarterTest()
      : rng_(crypto::Drbg::from_seed(21, "starter-tests")),
        key_(crypto::RsaKeyPair::generate(rng_, 1024)),
        signer_(&key_),
        image_(core::EnclaveImage::synthetic("starter", 2 * sgx::kPageSize,
                                             sgx::kPageSize)) {}

  crypto::Drbg rng_;
  crypto::RsaKeyPair key_;
  core::Signer signer_;
  core::EnclaveImage image_;
  sgx::SgxCpu cpu_{sgx::SgxCpu::Config{3, {}, true}};
};

TEST_F(StarterTest, CommonEnclaveStarts) {
  const auto si = signer_.sign_baseline(image_);
  const StartedEnclave enclave = start_enclave(cpu_, image_, si.sigstruct);
  EXPECT_TRUE(enclave.ok());
  EXPECT_EQ(cpu_.enclave_size(enclave.id), image_.total_size());
  EXPECT_EQ(enclave.instance_page_offset, image_.instance_page_offset());
}

TEST_F(StarterTest, InstancePageContentReadableAfterStart) {
  const auto si = signer_.sign_sinclave(image_);
  core::InstancePage page;
  page.token = core::AttestationToken::from_view(Bytes(32, 3));
  page.verifier_id = crypto::sha256(to_bytes("v"));
  const sgx::SigStruct od = core::make_on_demand_sigstruct(
      si.sigstruct,
      core::MeasurementPredictor::predict(si.base_hash, page), key_);

  const StartedEnclave enclave = start_enclave(cpu_, image_, od, page);
  ASSERT_TRUE(enclave.ok());
  const auto parsed = core::InstancePage::parse(
      cpu_.read_page(enclave.id, enclave.instance_page_offset));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, page);
}

TEST_F(StarterTest, WrongSigstructFailsEinit) {
  const auto si = signer_.sign_baseline(image_);
  core::InstancePage page;  // page changes MRENCLAVE; sigstruct does not match
  page.token = core::AttestationToken::from_view(Bytes(32, 1));
  const StartedEnclave enclave =
      start_enclave(cpu_, image_, si.sigstruct, page);
  EXPECT_FALSE(enclave.ok());
  EXPECT_EQ(enclave.einit_verdict, Verdict::kMeasurementMismatch);
}

TEST_F(StarterTest, SingletonStartNeedsListeningCas) {
  net::SimNetwork net;  // nothing bound
  const auto si = signer_.sign_sinclave(image_);
  const SingletonStart start = start_singleton_enclave(
      cpu_, net, "cas.missing", image_, si.sigstruct, "s");
  EXPECT_FALSE(start.ok());
  EXPECT_NE(start.error.find("instance request failed"), std::string::npos);
}

// --- program registry ---

TEST(ProgramRegistry, RegisterAndFind) {
  ProgramRegistry reg;
  EXPECT_EQ(reg.find("x"), nullptr);
  reg.register_program("x", [](AppContext&) { return 0; });
  ASSERT_NE(reg.find("x"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ProgramRegistry, ReplaceKeepsLatest) {
  ProgramRegistry reg;
  reg.register_program("x", [](AppContext&) { return 1; });
  reg.register_program("x", [](AppContext&) { return 2; });
  AppContext ctx;
  EXPECT_EQ((*reg.find("x"))(ctx), 2);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ProgramRegistry, NullProgramRejected) {
  ProgramRegistry reg;
  EXPECT_THROW(reg.register_program("x", Program{}), Error);
}

// --- runtime failure stages ---

class RuntimeFailureTest : public ::testing::Test {
 protected:
  RuntimeFailureTest()
      : bed_(workload::TestbedConfig{.seed = 23, .rsa_bits = 1024}),
        image_(core::EnclaveImage::synthetic("rt", sgx::kPageSize,
                                             sgx::kPageSize)) {
    bed_.programs().register_program("ok", [](AppContext&) { return 0; });
    bed_.programs().register_program("fail", [](AppContext&) { return 3; });
  }

  workload::Testbed bed_;
  core::EnclaveImage image_;
};

TEST_F(RuntimeFailureTest, UninitializedEnclaveRefused) {
  const core::Signer signer(&bed_.user_signer());
  auto si = signer.sign_baseline(image_);
  si.sigstruct.signature[0] ^= 1;  // einit will fail
  const StartedEnclave enclave =
      start_enclave(bed_.cpu(), image_, si.sigstruct);
  ASSERT_FALSE(enclave.ok());

  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  const RunResult result = rt.run(enclave, RunOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with("start:"));
}

TEST_F(RuntimeFailureTest, UnreachableCasReported) {
  const core::Signer signer(&bed_.user_signer());
  const auto si = signer.sign_baseline(image_);
  const StartedEnclave enclave =
      start_enclave(bed_.cpu(), image_, si.sigstruct);
  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  RunOptions o;
  o.cas_address = "cas.gone";
  o.cas_identity = bed_.cas().identity();
  o.session_name = "s";
  const RunResult result = rt.run(enclave, o);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with("attest:")) << result.error;
}

TEST_F(RuntimeFailureTest, NonzeroExitIsFailure) {
  const core::Signer signer(&bed_.user_signer());
  const auto si = signer.sign_baseline(image_);
  cas::Policy policy;
  policy.session_name = "f";
  policy.expected_signer =
      crypto::sha256(bed_.user_signer().public_key().modulus_be());
  policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  policy.config.program = "fail";
  bed_.cas().install_policy(policy);

  const StartedEnclave enclave =
      start_enclave(bed_.cpu(), image_, si.sigstruct);
  auto rt = bed_.make_runtime(RuntimeMode::kBaseline);
  RunOptions o;
  o.cas_address = bed_.cas_address();
  o.cas_identity = bed_.cas().identity();
  o.session_name = "f";
  const RunResult result = rt.run(enclave, o);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.exit_code, 3);
}

TEST_F(RuntimeFailureTest, CorruptedInstancePageReported) {
  // A host that writes garbage (non-zero, non-conformant) into the
  // instance page slot produces an enclave the runtime refuses to drive.
  const core::Signer signer(&bed_.user_signer());
  // Build manually so we control the raw instance page bytes.
  const auto id = bed_.cpu().ecreate(image_.total_size(), image_.attributes,
                                     image_.ssa_frame_size);
  for (std::uint64_t p = 0; p < image_.code_pages(); ++p)
    bed_.cpu().add_measured_page(id, p * sgx::kPageSize, image_.code_page(p),
                                 sgx::SecInfo::reg_rx());
  for (std::uint64_t p = 0; p < image_.heap_pages(); ++p)
    bed_.cpu().add_measured_page(id,
                                 image_.code_bytes_padded() + p * sgx::kPageSize,
                                 ByteView{}, sgx::SecInfo::reg_rw());
  Bytes garbage(sgx::kPageSize, 0);
  garbage[0] = 0xde;
  bed_.cpu().add_measured_page(id, image_.instance_page_offset(), garbage,
                               sgx::SecInfo::reg_rw());

  sgx::SigStruct sig;
  sig.enclave_hash = bed_.cpu().current_measurement(id);
  sig.attribute_mask = sgx::Attributes{
      ~std::uint64_t{sgx::Attributes::kInit}, ~std::uint64_t{0}};
  sig.sign(bed_.user_signer());
  ASSERT_EQ(bed_.cpu().einit(id, sig), Verdict::kOk);

  StartedEnclave enclave;
  enclave.id = id;
  enclave.einit_verdict = Verdict::kOk;
  enclave.instance_page_offset = image_.instance_page_offset();

  auto rt = bed_.make_runtime(RuntimeMode::kSinclave);
  const RunResult result = rt.run(enclave, RunOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.error.starts_with("instance-page:")) << result.error;
}

}  // namespace
}  // namespace sinclave::runtime
