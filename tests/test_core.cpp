// Tests for the SinClave core: base hash, instance page, signer (both
// paths), verifier-side measurement prediction, and on-demand SigStructs.
// The central property: the verifier's *predicted* MRENCLAVE equals the
// MRENCLAVE the simulated hardware computes for the actually-constructed
// singleton enclave.
#include <gtest/gtest.h>

#include "core/base_hash.h"
#include "core/image.h"
#include "core/instance_page.h"
#include "core/on_demand.h"
#include "core/predictor.h"
#include "core/signer.h"
#include "runtime/starter.h"
#include "sgx/cpu.h"

namespace sinclave::core {
namespace {

crypto::Drbg rng(std::uint64_t seed) {
  return crypto::Drbg::from_seed(seed, "core-tests");
}

// --- EnclaveImage layout ---

TEST(EnclaveImage, LayoutArithmetic) {
  EnclaveImage img = EnclaveImage::synthetic("t", 5000, 2 * sgx::kPageSize);
  EXPECT_EQ(img.code_bytes_padded(), 2 * sgx::kPageSize);  // 5000 -> 2 pages
  EXPECT_EQ(img.code_pages(), 2u);
  EXPECT_EQ(img.heap_pages(), 2u);
  EXPECT_EQ(img.instance_page_offset(), 4 * sgx::kPageSize);
  EXPECT_EQ(img.total_size(), 5 * sgx::kPageSize);
}

TEST(EnclaveImage, EmptyCodeStillOnePage) {
  EnclaveImage img;
  img.code.clear();
  img.heap_bytes = 0;
  EXPECT_EQ(img.code_pages(), 1u);
  EXPECT_EQ(img.total_size(), 2 * sgx::kPageSize);
}

TEST(EnclaveImage, CodePagePaddedWithZeros) {
  EnclaveImage img = EnclaveImage::synthetic("t", 100, 0);
  const Bytes page = img.code_page(0);
  EXPECT_EQ(page.size(), sgx::kPageSize);
  EXPECT_EQ(Bytes(page.begin(), page.begin() + 100),
            Bytes(img.code.begin(), img.code.end()));
  for (std::size_t i = 100; i < sgx::kPageSize; ++i)
    EXPECT_EQ(page[i], 0) << i;
  EXPECT_THROW(img.code_page(1), Error);
}

TEST(EnclaveImage, HeapMustBePageMultiple) {
  EnclaveImage img = EnclaveImage::synthetic("t", 100, 0);
  img.heap_bytes = 100;
  EXPECT_THROW(img.heap_pages(), Error);
}

TEST(EnclaveImage, SerializationRoundTrip) {
  EnclaveImage img = EnclaveImage::synthetic("round", 1000, sgx::kPageSize);
  img.isv_prod_id = 3;
  img.isv_svn = 4;
  EXPECT_EQ(EnclaveImage::deserialize(img.serialize()), img);
}

TEST(EnclaveImage, SyntheticIsDeterministicPerName) {
  EXPECT_EQ(EnclaveImage::synthetic("a", 100, 0),
            EnclaveImage::synthetic("a", 100, 0));
  EXPECT_NE(EnclaveImage::synthetic("a", 100, 0).code,
            EnclaveImage::synthetic("b", 100, 0).code);
}

// --- instance page ---

TEST(InstancePage, RenderParseRoundTrip) {
  InstancePage page;
  auto r = rng(1);
  r.generate(page.token.data.data(), 32);
  r.generate(page.verifier_id.data.data(), 32);
  const Bytes rendered = page.render();
  EXPECT_EQ(rendered.size(), sgx::kPageSize);
  const auto parsed = InstancePage::parse(rendered);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, page);
}

TEST(InstancePage, ZeroPageParsesAsCommon) {
  EXPECT_FALSE(InstancePage::parse(Bytes(sgx::kPageSize, 0)).has_value());
}

TEST(InstancePage, GarbageRejected) {
  Bytes garbage(sgx::kPageSize, 0);
  garbage[0] = 0x01;  // nonzero but wrong magic
  EXPECT_THROW(InstancePage::parse(garbage), ParseError);
  EXPECT_THROW(InstancePage::parse(Bytes(100, 0)), ParseError);

  InstancePage page;
  Bytes tampered = page.render();
  tampered[sgx::kPageSize - 1] = 0xff;  // nonzero padding
  EXPECT_THROW(InstancePage::parse(tampered), ParseError);
}

// --- base hash ---

TEST(BaseHash, EncodeDecodeRoundTrip) {
  crypto::Sha256 h;
  h.update(Bytes(128, 3));
  BaseHash b;
  b.state = h.export_state();
  b.enclave_size = 10 * sgx::kPageSize;
  b.instance_page_offset = 9 * sgx::kPageSize;
  b.ssa_frame_size = 2;
  EXPECT_EQ(BaseHash::decode(b.encode()), b);
}

TEST(BaseHash, DecodeRejectsInconsistentLayout) {
  crypto::Sha256 h;
  BaseHash b;
  b.state = h.export_state();
  b.enclave_size = sgx::kPageSize;
  b.instance_page_offset = sgx::kPageSize;  // outside [0, size)
  EXPECT_THROW(BaseHash::decode(b.encode()), ParseError);
}

// --- signer ---

class SignerTest : public ::testing::Test {
 protected:
  SignerTest()
      : rng_(rng(10)),
        key_(crypto::RsaKeyPair::generate(rng_, 1024)),
        signer_(&key_),
        image_(EnclaveImage::synthetic("signer-test", 3 * sgx::kPageSize,
                                       2 * sgx::kPageSize)) {}

  crypto::Drbg rng_;
  crypto::RsaKeyPair key_;
  Signer signer_;
  EnclaveImage image_;
};

TEST_F(SignerTest, FastAndInterruptiblePathsAgree) {
  const sgx::Measurement fast = signer_.measure_fast(image_);
  const auto slow = signer_.measure_interruptible(image_);
  EXPECT_EQ(fast, slow.mr_enclave);
}

TEST_F(SignerTest, BaselineSigstructVerifies) {
  const SignedImage si = signer_.sign_baseline(image_);
  EXPECT_TRUE(si.sigstruct.signature_valid());
  EXPECT_EQ(si.sigstruct.enclave_hash, signer_.measure_fast(image_));
}

TEST_F(SignerTest, SinclaveBaseHashFinalizesToCommonMeasurement) {
  // predict_common(base hash) must equal the common MRENCLAVE in the
  // SigStruct — the verifier's cross-check of received artifacts.
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);
  EXPECT_EQ(MeasurementPredictor::predict_common(si.base_hash),
            si.sigstruct.enclave_hash);
}

TEST_F(SignerTest, BaseHashCarriesLayout) {
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);
  EXPECT_EQ(si.base_hash.enclave_size, image_.total_size());
  EXPECT_EQ(si.base_hash.instance_page_offset, image_.instance_page_offset());
}

TEST_F(SignerTest, DifferentImagesDifferentBaseHashes) {
  const auto a = signer_.sign_sinclave(image_);
  EnclaveImage other = image_;
  other.code[0] ^= 1;
  const auto b = signer_.sign_sinclave(other);
  EXPECT_NE(a.base_hash.state, b.base_hash.state);

  EnclaveImage bigger_heap = image_;
  bigger_heap.heap_bytes += sgx::kPageSize;
  const auto c = signer_.sign_sinclave(bigger_heap);
  EXPECT_NE(a.base_hash.state, c.base_hash.state);
}

// --- predictor vs real hardware construction (the core property) ---

TEST_F(SignerTest, PredictionMatchesHardwareForSingleton) {
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);

  InstancePage page;
  auto r = rng(11);
  r.generate(page.token.data.data(), 32);
  r.generate(page.verifier_id.data.data(), 32);

  const sgx::Measurement predicted =
      MeasurementPredictor::predict(si.base_hash, page);

  // Build the enclave for real on the simulated CPU.
  sgx::SgxCpu cpu{sgx::SgxCpu::Config{5, {}, true}};
  const sgx::SigStruct on_demand =
      make_on_demand_sigstruct(si.sigstruct, predicted, key_);
  const runtime::StartedEnclave enclave =
      runtime::start_enclave(cpu, image_, on_demand, page);

  ASSERT_TRUE(enclave.ok()) << to_string(enclave.einit_verdict);
  EXPECT_EQ(cpu.identity(enclave.id).mr_enclave, predicted);
}

TEST_F(SignerTest, PredictionMatchesHardwareForCommon) {
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);
  sgx::SgxCpu cpu{sgx::SgxCpu::Config{6, {}, true}};
  const runtime::StartedEnclave enclave =
      runtime::start_enclave(cpu, image_, si.sigstruct);
  ASSERT_TRUE(enclave.ok());
  EXPECT_EQ(cpu.identity(enclave.id).mr_enclave,
            MeasurementPredictor::predict_common(si.base_hash));
}

TEST_F(SignerTest, DistinctTokensDistinctMeasurements) {
  // Freshness: every token individualizes MRENCLAVE.
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);
  auto r = rng(12);
  InstancePage p1, p2;
  r.generate(p1.token.data.data(), 32);
  r.generate(p2.token.data.data(), 32);
  p1.verifier_id = p2.verifier_id = crypto::sha256(to_bytes("verifier"));
  EXPECT_NE(MeasurementPredictor::predict(si.base_hash, p1),
            MeasurementPredictor::predict(si.base_hash, p2));
}

TEST_F(SignerTest, DistinctVerifiersDistinctMeasurements) {
  // An enclave bound to verifier A can never impersonate one bound to B.
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);
  InstancePage p1, p2;
  p1.token = p2.token = AttestationToken::from_view(Bytes(32, 7));
  p1.verifier_id = crypto::sha256(to_bytes("verifier-a"));
  p2.verifier_id = crypto::sha256(to_bytes("verifier-b"));
  EXPECT_NE(MeasurementPredictor::predict(si.base_hash, p1),
            MeasurementPredictor::predict(si.base_hash, p2));
}

// --- on-demand sigstruct ---

TEST_F(SignerTest, OnDemandPreservesEverythingButMeasurement) {
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);
  sgx::Measurement target;
  target.data[0] = 0x99;
  const sgx::SigStruct od = make_on_demand_sigstruct(si.sigstruct, target, key_);
  EXPECT_TRUE(od.signature_valid());
  EXPECT_EQ(od.enclave_hash, target);
  EXPECT_EQ(od.mr_signer(), si.sigstruct.mr_signer());
  EXPECT_EQ(od.isv_prod_id, si.sigstruct.isv_prod_id);
  EXPECT_EQ(od.attributes, si.sigstruct.attributes);
}

TEST_F(SignerTest, OnDemandRejectsForeignSigner) {
  const SinclaveSignedImage si = signer_.sign_sinclave(image_);
  auto r = rng(13);
  const auto other_key = crypto::RsaKeyPair::generate(r, 1024);
  EXPECT_THROW(
      make_on_demand_sigstruct(si.sigstruct, sgx::Measurement{}, other_key),
      Error);
}

TEST_F(SignerTest, OnDemandRejectsUnsignedCommon) {
  sgx::SigStruct unsigned_common;
  unsigned_common.signer_key = key_.public_key();
  EXPECT_THROW(
      make_on_demand_sigstruct(unsigned_common, sgx::Measurement{}, key_),
      Error);
}

// --- property sweep: prediction holds across image shapes ---

struct ImageShape {
  std::size_t code_size;
  std::uint64_t heap_pages;
};

class PredictionSweep : public ::testing::TestWithParam<ImageShape> {};

TEST_P(PredictionSweep, PredictionMatchesHardware) {
  const auto& shape = GetParam();
  auto key_rng = rng(100);
  const auto key = crypto::RsaKeyPair::generate(key_rng, 1024);
  const Signer signer(&key);
  const EnclaveImage image = EnclaveImage::synthetic(
      "sweep", shape.code_size, shape.heap_pages * sgx::kPageSize);
  const SinclaveSignedImage si = signer.sign_sinclave(image);

  InstancePage page;
  page.token = AttestationToken::from_view(Bytes(32, 0x21));
  page.verifier_id = crypto::sha256(to_bytes("sweep-verifier"));
  const sgx::Measurement predicted =
      MeasurementPredictor::predict(si.base_hash, page);

  sgx::SgxCpu cpu{sgx::SgxCpu::Config{9, {}, true}};
  const sgx::SigStruct od = make_on_demand_sigstruct(si.sigstruct, predicted, key);
  const runtime::StartedEnclave enclave =
      runtime::start_enclave(cpu, image, od, page);
  ASSERT_TRUE(enclave.ok()) << to_string(enclave.einit_verdict);
  EXPECT_EQ(cpu.identity(enclave.id).mr_enclave, predicted);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PredictionSweep,
    ::testing::Values(ImageShape{1, 0}, ImageShape{100, 1},
                      ImageShape{sgx::kPageSize, 4},
                      ImageShape{3 * sgx::kPageSize + 17, 16},
                      ImageShape{64 * 1024, 64}));

}  // namespace
}  // namespace sinclave::core
