// The chaos scenario suite, one test per named scenario (smoke-sized so
// ASan/TSAN CI can afford the whole file). Each scenario carries its own
// explicit pass criteria — typed failures only, exactly-once token spend,
// metrics closure, post-heal recovery — so a test failure prints the
// precise violated criterion, not just "scenario failed".
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "workload/chaos.h"

namespace sinclave::workload {
namespace {

ChaosConfig smoke_config() {
  ChaosConfig config;
  config.seed = 7;
  config.smoke = true;
  return config;
}

void expect_passed(const ChaosScenarioResult& r) {
  EXPECT_TRUE(r.passed) << r.name << " violated " << r.failures.size()
                        << " criteria";
  for (const std::string& f : r.failures)
    ADD_FAILURE() << r.name << ": " << f;
  EXPECT_EQ(r.untyped_failures, 0u)
      << r.name << ": exceptions escaped the SDK";
}

TEST(Chaos, RegistryNamesAreStableAndComplete) {
  const auto names = chaos_scenario_names();
  ASSERT_EQ(names.size(), 6u);
  for (const char* expected :
       {"connection-churn", "mid-handshake-drops", "replay-storm",
        "byzantine-impersonator", "backend-brownout", "partition-and-heal"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  EXPECT_THROW(run_chaos_scenario("no-such-scenario", smoke_config()), Error);
}

TEST(Chaos, ConnectionChurn) {
  expect_passed(run_chaos_scenario("connection-churn", smoke_config()));
}

TEST(Chaos, MidHandshakeDrops) {
  expect_passed(run_chaos_scenario("mid-handshake-drops", smoke_config()));
}

TEST(Chaos, ReplayStorm) {
  expect_passed(run_chaos_scenario("replay-storm", smoke_config()));
}

TEST(Chaos, ByzantineImpersonator) {
  expect_passed(run_chaos_scenario("byzantine-impersonator", smoke_config()));
}

TEST(Chaos, BackendBrownout) {
  const ChaosScenarioResult r =
      run_chaos_scenario("backend-brownout", smoke_config());
  expect_passed(r);
  // The brownout must actually have bitten: faults injected, and the
  // accounting fields populated (the closure equations themselves are the
  // scenario's own criteria).
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.attempts, r.ok);
}

TEST(Chaos, PartitionAndHeal) {
  const ChaosScenarioResult r =
      run_chaos_scenario("partition-and-heal", smoke_config());
  expect_passed(r);
  EXPECT_EQ(r.breaker_trips, 1u);
}

}  // namespace
}  // namespace sinclave::workload
