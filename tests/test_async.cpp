// Tests for the event-driven serving path: SimNetwork's completion-token
// API (async_call + deferred handler-side completion), the timer wheel,
// CasServer's request state machine (backend stalls park on timers, not
// workers), and the open-loop load generator built on top.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "cas/client.h"
#include "common/error.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "net/sim_network.h"
#include "net/timer_wheel.h"
#include "server/cas_server.h"
#include "workload/load_gen.h"
#include "workload/testbed.h"

namespace sinclave {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

// --- SimNetwork completion API ---------------------------------------------

TEST(AsyncNetwork, InlineCompletionDeliversResponse) {
  net::SimNetwork net;
  net.listen_async("svc", [](ByteView req, net::SimNetwork::Completion done) {
    Bytes out{req.begin(), req.end()};
    out.push_back('!');
    done(std::move(out));
  });
  auto conn = net.connect("svc");
  std::atomic<bool> called{false};
  conn.async_call(to_bytes("hi"), [&](Bytes resp, std::exception_ptr error) {
    EXPECT_EQ(error, nullptr);
    EXPECT_EQ(resp, to_bytes("hi!"));
    called = true;
  });
  EXPECT_TRUE(called.load());  // handler completed inline
  EXPECT_EQ(net.round_trips(), 1u);
  // The synchronous form rides on the same async core.
  EXPECT_EQ(conn.call(to_bytes("yo")), to_bytes("yo!"));
}

TEST(AsyncNetwork, DeferredCompletionFromAnotherThread) {
  net::SimNetwork net;
  net::SimNetwork::Completion pending;
  std::mutex mutex;
  std::condition_variable cv;
  bool have = false;
  net.listen_async("svc",
                   [&](ByteView, net::SimNetwork::Completion done) {
                     std::lock_guard lock(mutex);
                     pending = std::move(done);
                     have = true;
                     cv.notify_all();
                   });
  std::thread completer([&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return have; });
    pending(to_bytes("later"));
  });
  auto conn = net.connect("svc");
  EXPECT_EQ(conn.call(Bytes{}), to_bytes("later"));  // blocks until deferred
  completer.join();
}

TEST(AsyncNetwork, ShutdownWaitsForDeferredCompletion) {
  net::SimNetwork net;
  std::atomic<bool> completed{false};
  std::thread completer;
  net.listen_async("svc", [&](ByteView, net::SimNetwork::Completion done) {
    completer = std::thread([&completed, done] {
      std::this_thread::sleep_for(30ms);
      completed = true;
      done(Bytes{1});
    });
  });
  auto conn = net.connect("svc");
  std::atomic<bool> responded{false};
  conn.async_call(Bytes{}, [&](Bytes, std::exception_ptr) {
    responded = true;
  });
  net.shutdown("svc");  // must block until the deferred completion fired
  // The guarantee is handler-side: after shutdown, the handler (and
  // whoever completed on its behalf) is done with the request. The client
  // callback races only by a few instructions; join the completer to
  // observe it.
  EXPECT_TRUE(completed.load());
  completer.join();
  EXPECT_TRUE(responded.load());
}

TEST(AsyncNetwork, DroppedCompletionDeliversErrorNotDeadlock) {
  net::SimNetwork net;
  net.listen_async("svc", [](ByteView, net::SimNetwork::Completion done) {
    (void)done;  // handler "forgets" the request; token dies on return
  });
  auto conn = net.connect("svc");
  EXPECT_THROW(conn.call(Bytes{}), Error);
  std::atomic<bool> failed{false};
  conn.async_call(Bytes{}, [&](Bytes, std::exception_ptr error) {
    failed = error != nullptr;
  });
  EXPECT_TRUE(failed.load());
  net.shutdown("svc");  // nothing left in flight
}

TEST(AsyncNetwork, HandlerThrowReachesSyncCaller) {
  net::SimNetwork net;
  net.listen("svc", [](ByteView) -> Bytes { throw Error("boom"); });
  auto conn = net.connect("svc");
  EXPECT_THROW(conn.call(Bytes{}), Error);
  net.shutdown("svc");  // drained despite the throw
}

TEST(AsyncNetwork, CompletionIsExactlyOnceAcrossCopies) {
  net::SimNetwork net;
  net.listen_async("svc", [](ByteView, net::SimNetwork::Completion done) {
    const net::SimNetwork::Completion copy = done;
    copy(Bytes{1});
    done(Bytes{2});  // loses: first completion wins
    copy.fail(std::make_exception_ptr(Error("late")));
  });
  auto conn = net.connect("svc");
  std::atomic<int> calls{0};
  Bytes got;
  conn.async_call(Bytes{}, [&](Bytes resp, std::exception_ptr error) {
    EXPECT_EQ(error, nullptr);
    got = std::move(resp);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(got, Bytes{1});
}

// --- timer wheel ------------------------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  net::TimerWheel wheel;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> order;
  const auto push = [&](int id) {
    std::lock_guard lock(mutex);
    order.push_back(id);
    cv.notify_all();
  };
  wheel.schedule_after(40ms, [&] { push(2); });
  wheel.schedule_after(5ms, [&] { push(1); });
  wheel.schedule_after(0ms, [&] { push(0); });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return order.size() == 3; }));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(wheel.fired(), 3u);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, DestructorFiresPendingCallbacksEarly) {
  std::atomic<bool> fired{false};
  const auto start = Clock::now();
  {
    net::TimerWheel wheel;
    wheel.schedule_after(10s, [&] { fired = true; });
    EXPECT_EQ(wheel.pending(), 1u);
  }
  EXPECT_TRUE(fired.load());  // fired at shutdown, not dropped
  EXPECT_LT(Clock::now() - start, 5s);  // and early, not after 10 s
}

TEST(TimerWheelTest, CallbackExceptionsDoNotKillTheWheel) {
  net::TimerWheel wheel;
  std::atomic<bool> fired{false};
  std::mutex mutex;
  std::condition_variable cv;
  wheel.schedule_after(0ms, [] { throw Error("boom"); });
  wheel.schedule_after(1ms, [&] {
    fired = true;
    std::lock_guard lock(mutex);
    cv.notify_all();
  });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return fired.load(); }));
  EXPECT_EQ(wheel.fired(), 2u);
}

TEST(TimerWheelTest, CancelPreventsTheCallbackFromEverRunning) {
  std::atomic<bool> cancelled_ran{false};
  std::atomic<bool> kept_ran{false};
  {
    net::TimerWheel wheel;
    const auto doomed = wheel.schedule_after(10s, [&] { cancelled_ran = true; });
    wheel.schedule_after(10s, [&] { kept_ran = true; });
    EXPECT_EQ(wheel.pending(), 2u);
    EXPECT_TRUE(wheel.cancel(doomed));
    EXPECT_FALSE(wheel.cancel(doomed));  // second cancel finds nothing pending
    EXPECT_EQ(wheel.pending(), 1u);
    EXPECT_EQ(wheel.cancelled(), 1u);
  }  // the shutdown drain fires the kept timer early but honors the cancel
  EXPECT_FALSE(cancelled_ran.load());
  EXPECT_TRUE(kept_ran.load());
}

TEST(TimerWheelTest, CancelAfterFireReturnsFalse) {
  net::TimerWheel wheel;
  std::mutex mutex;
  std::condition_variable cv;
  bool fired = false;
  const auto id = wheel.schedule_after(0ms, [&] {
    std::lock_guard lock(mutex);
    fired = true;
    cv.notify_all();
  });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return fired; }));
  EXPECT_FALSE(wheel.cancel(id));       // lost the race: it already ran
  EXPECT_FALSE(wheel.cancel(id + 99));  // unknown ids are never "cancelled"
  EXPECT_EQ(wheel.cancelled(), 0u);
  EXPECT_EQ(wheel.fired(), 1u);
}

TEST(TimerWheelTest, CancelRacingFireDeliversEveryCompletionExactlyOnce) {
  // Regression for the shutdown/cancel race: a timer callback holding a
  // network Completion must resolve exactly once no matter which of
  // {fire, cancel, shutdown-drain} wins. Cancelled callbacks are destroyed
  // unfired, so their Completion delivers the dropped-request error — the
  // caller always hears back, and never twice.
  net::SimNetwork net;
  auto wheel = std::make_unique<net::TimerWheel>();
  std::mutex ids_mutex;
  std::vector<net::TimerWheel::TimerId> ids;
  net.listen_async("svc", [&](ByteView, net::SimNetwork::Completion done) {
    const auto id = wheel->schedule_after(std::chrono::microseconds(50),
                                          [done] { done(Bytes{1}); });
    std::lock_guard lock(ids_mutex);
    ids.push_back(id);
  });
  auto conn = net.connect("svc");

  constexpr int kOps = 400;
  std::atomic<int> delivered{0};
  std::atomic<int> ok{0};
  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    while (!stop.load()) {
      std::optional<net::TimerWheel::TimerId> victim;
      {
        std::lock_guard lock(ids_mutex);
        if (!ids.empty()) {
          victim = ids.back();
          ids.pop_back();
        }
      }
      if (victim.has_value())
        (void)wheel->cancel(*victim);
      else
        std::this_thread::yield();
    }
  });
  for (int i = 0; i < kOps; ++i) {
    conn.async_call(Bytes{}, [&](Bytes, std::exception_ptr error) {
      ++delivered;
      if (error == nullptr) ++ok;
    });
  }
  stop = true;
  canceller.join();
  // Destroying the wheel drains it: surviving timers fire early, cancelled
  // entries are destroyed unfired (their Completions deliver the error).
  wheel.reset();
  EXPECT_EQ(delivered.load(), kOps);
  EXPECT_GT(ok.load(), 0);
  net.shutdown("svc");
}

// --- CasServer: the request state machine -----------------------------------

class AsyncServingTest : public ::testing::Test {
 protected:
  static constexpr const char* kAddress = "cas.async";

  AsyncServingTest()
      : bed_(workload::TestbedConfig{.seed = 97}),
        image_(core::EnclaveImage::synthetic("async", sgx::kPageSize,
                                             4 * sgx::kPageSize)),
        signer_(&bed_.user_signer()),
        signed_(signer_.sign_sinclave(image_)) {}

  void install(const std::string& name) {
    cas::Policy p;
    p.session_name = name;
    p.expected_signer =
        crypto::sha256(bed_.user_signer().public_key().modulus_be());
    p.require_singleton = true;
    p.base_hash = signed_.base_hash;
    p.config.program = "noop";
    bed_.cas().install_policy(p);
  }

  workload::Testbed bed_;
  core::EnclaveImage image_;
  core::Signer signer_;
  core::SinclaveSignedImage signed_;
};

TEST_F(AsyncServingTest, BackendStallsDoNotPinWorkers) {
  install("s");
  server::CasServerConfig cfg;
  cfg.workers = 2;
  cfg.backend_io = 100ms;
  server::CasServer server(&bed_.cas(), cfg);
  server.premint("s", signed_.sigstruct, 16);  // keep the CPU path cheap
  server.bind(bed_.network(), kAddress);

  // 16 concurrent clients on 2 workers. Thread-per-request serving would
  // need ceil(16/2) * 100ms = 800ms; the state machine parks all 16
  // stalls on the timer wheel concurrently.
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i)
    clients.emplace_back([&] {
      cas::CasClient client(&bed_.network(),
                            cas::CasClientConfig{.address = kAddress, .retry = {}});
      if (client.get_instance("s", signed_.sigstruct).ok()) ++ok;
    });
  for (auto& t : clients) t.join();
  const auto wall = Clock::now() - start;

  EXPECT_EQ(ok.load(), 16);
  // Thread-per-request would take >= 800ms; leave headroom for noisy CI.
  EXPECT_LT(wall, 600ms) << "stalls appear to serialize on workers";
  EXPECT_GE(server.metrics().max_in_flight.load(), 8u);
  EXPECT_EQ(server.metrics().requests_in_flight.load(), 0u);
  EXPECT_EQ(server.metrics().get_instance.requests.load(), 16u);
  EXPECT_EQ(server.metrics().get_instance.latency.snapshot().count, 16u);
  // Latency includes the deferred stall.
  EXPECT_GE(server.metrics().get_instance.latency.snapshot().p50,
            std::chrono::milliseconds(100));
}

TEST_F(AsyncServingTest, OpenLoopSustainsInFlightBeyondThreadCounts) {
  install("s");
  server::CasServerConfig cfg;
  cfg.workers = 2;
  cfg.backend_io = 40ms;
  server::CasServer server(&bed_.cas(), cfg);
  server.premint("s", signed_.sigstruct, 128);
  server.bind(bed_.network(), kAddress);

  workload::LoadGenConfig load;
  load.mode = workload::LoadMode::kOpen;
  load.clients = 2;           // two issuing threads...
  load.logical_clients = 32;  // ...multiplex 32 arrival streams
  load.requests_per_client = 3;
  load.mean_interarrival = 10ms;
  load.address = kAddress;
  load.sessions = {"s"};
  load.base_seed = 7;
  const auto result =
      workload::run_instance_load(bed_.network(), signed_.sigstruct, load);

  EXPECT_EQ(result.failed, 0u) << result.first_error;
  EXPECT_EQ(result.ok, 96u);
  const std::set<std::string> unique(result.tokens.begin(),
                                     result.tokens.end());
  EXPECT_EQ(unique.size(), 96u);  // one-time tokens, still unique
  // In-flight far beyond both issuing threads (2) and workers (2).
  EXPECT_GE(result.max_in_flight, 8u) << "open loop failed to overlap";
  EXPECT_GE(server.metrics().max_in_flight.load(), 8u);
  EXPECT_EQ(server.metrics().requests_in_flight.load(), 0u);
}

TEST_F(AsyncServingTest, UnbindCompletesParkedRequests) {
  install("s");
  server::CasServerConfig cfg;
  cfg.workers = 1;
  cfg.backend_io = 50ms;
  server::CasServer server(&bed_.cas(), cfg);
  server.bind(bed_.network(), kAddress);

  cas::CasClient client(&bed_.network(),
                        cas::CasClientConfig{.address = kAddress, .retry = {}});
  std::mutex mutex;
  std::condition_variable cv;
  bool responded = false;
  bool was_ok = false;
  client.get_instance_async("s", signed_.sigstruct,
                            [&](const cas::InstanceResult& got) {
                              std::lock_guard lock(mutex);
                              responded = true;
                              was_ok = got.ok();
                              cv.notify_all();
                            });
  server.unbind();  // drains the stall parked on the timer wheel
  // unbind guarantees the server side is quiescent; the client callback
  // trails it by a hair — wait for the delivery.
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, 5s, [&] { return responded; }));
  EXPECT_TRUE(was_ok);
}

// Pool pressure drives refills: no request probes depth, yet the pool
// stays warm after traffic draws it below the watermark.
TEST_F(AsyncServingTest, LowWatermarkRefillKeepsPoolWarmOverTheNetwork) {
  install("s");
  server::CasServerConfig cfg;
  cfg.workers = 2;
  cfg.premint_depth = 4;
  server::CasServer server(&bed_.cas(), cfg);
  server.bind(bed_.network(), kAddress);

  cas::CasClient client(&bed_.network(),
                        cas::CasClientConfig{.address = kAddress, .retry = {}});
  ASSERT_TRUE(client.get_instance("s", signed_.sigstruct).ok());
  server.pool().drain();
  EXPECT_EQ(server.sigstruct_cache().pooled("s"), 4u);
  EXPECT_GE(server.metrics().refills_scheduled.load(), 1u);
}

}  // namespace
}  // namespace sinclave
