// Seed-corpus generator for the fuzz harnesses (fuzz/).
//
// Usage: gen_corpus <output-dir>
//
// Writes one subdirectory per harness, each holding a handful of VALID
// inputs produced by the library's own serializers (plus a few crafted
// hostile ones). Seeds matter twice: libFuzzer mutates from them instead
// of rediscovering the wire format byte by byte, and the standalone gcc
// driver replays + mutates them so even the fallback flavor starts from
// deep program states. Everything here is deterministic (fixed Drbg
// seeds) — running the tool twice yields identical corpora.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "cas/persistence.h"
#include "cas/protocol.h"
#include "cas/replication.h"
#include "cas/service.h"
#include "common/serial.h"
#include "core/signer.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "quote/attestation_service.h"
#include "sgx/sigstruct.h"

namespace stdfs = std::filesystem;
using namespace sinclave;

namespace {

void write_seed(const stdfs::path& dir, const std::string& name,
                const Bytes& bytes) {
  stdfs::create_directories(dir);
  std::ofstream f(dir / name, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Harness inputs start with a mode byte; prepend it.
Bytes mode(std::uint8_t m, const Bytes& body = {}) {
  Bytes out{m};
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Bytes text(const char* s) {
  const std::string str(s);
  return Bytes(str.begin(), str.end());
}

/// u16-length-prefixed chunk, the FuzzInput::chunk() encoding.
Bytes chunk(const Bytes& body) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(body.size()));
  const Bytes prefix = std::move(w).take();
  Bytes out = prefix;
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: gen_corpus <output-dir>\n");
    return 2;
  }
  const stdfs::path out(argv[1]);

  // Shared fixtures: one RSA key (keygen dominates the tool's runtime),
  // one synthetic signed image.
  crypto::Drbg rng = crypto::Drbg::from_seed(41, "gen-corpus");
  const crypto::RsaKeyPair key = crypto::RsaKeyPair::generate(rng, 1024);
  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("corpus", sgx::kPageSize,
                                    2 * sgx::kPageSize);
  core::Signer signer(&key);
  const core::SinclaveSignedImage signed_image = signer.sign_sinclave(image);
  core::AttestationToken token;
  token.data.fill(0xA5);

  // --- fuzz_envelope ------------------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_envelope";
    cas::InstanceRequest req;
    req.session_name = "alpha";
    req.common_sigstruct = signed_image.sigstruct;
    write_seed(dir, "instance_request", mode(2, req.serialize()));

    cas::Envelope env;
    env.command = cas::Command::kGetInstance;
    env.request_id = 7;
    env.payload = req.serialize();
    write_seed(dir, "envelope_get_instance", mode(0, env.serialize()));
    write_seed(dir, "frame_get_instance", mode(10, env.serialize()));

    cas::InstanceResponse resp;
    resp.status = Status(StatusCode::kOk);
    resp.token = token;
    resp.singleton_sigstruct = signed_image.sigstruct;
    write_seed(dir, "instance_response_v1", mode(3, resp.serialize()));
    write_seed(dir, "instance_response_v0", mode(4, resp.serialize_v0()));

    cas::AttestPayload attest;
    attest.session_name = "alpha";
    attest.token = token;
    write_seed(dir, "attest_payload", mode(5, attest.serialize()));

    cas::ConfigResponse config;
    config.status = Status(StatusCode::kOk);
    config.config.program = "prog";
    config.config.args = {"-v", "--mode=strict"};
    config.config.env["K"] = "V";
    write_seed(dir, "config_response_v1", mode(6, config.serialize()));
    write_seed(dir, "config_response_v0", mode(7, config.serialize_v0()));
    write_seed(dir, "app_config", mode(1, config.config.serialize()));

    cas::IntrospectRequest intro_req;
    intro_req.max_traces = 4;
    intro_req.include_slow = true;
    write_seed(dir, "introspect_request", mode(8, intro_req.serialize()));

    cas::IntrospectResponse intro_resp;
    intro_resp.status = Status(StatusCode::kOk);
    intro_resp.metrics = "{\"requests\":1}";
    write_seed(dir, "introspect_response", mode(9, intro_resp.serialize()));

    write_seed(dir, "legacy_status_text",
               mode(12, text("error: token already used")));
  }

  // --- fuzz_status_details ------------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_status_details";
    write_seed(dir, "retry_after", mode(0, text("retry-after-ms=1500")));
    write_seed(dir, "compose_parse",
               mode(1, Bytes{0x10, 0x27, 0x00, 0x00, 'a', 't', 't'}));
    write_seed(dir, "wire_bytes", mode(2, Bytes{0x07, 'd', 'e', 't'}));
    write_seed(dir, "legacy_text", mode(3, text("\x05 deadline exceeded")));
    write_seed(dir, "leader_hint",
               mode(4, chunk(text("not the leader (leader=cas-node2)"))));
  }

  // --- fuzz_sigstruct_quote -----------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_sigstruct_quote";
    write_seed(dir, "signed_sigstruct",
               mode(0, signed_image.sigstruct.serialize()));
    write_seed(dir, "report", mode(1, sgx::Report{}.serialize()));
    write_seed(dir, "target_info", mode(2, sgx::TargetInfo{}.serialize()));
    write_seed(dir, "quote", mode(3, quote::Quote{}.serialize()));
    crypto::Sha256 h;
    const Bytes block(64, 0x42);
    h.update(block);
    write_seed(dir, "sha_state", mode(4, h.export_state().encode()));
  }

  // --- fuzz_bignum_diff ---------------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_bignum_diff";
    crypto::Drbg nums = crypto::Drbg::from_seed(42, "gen-corpus-bignum");
    for (std::uint8_t m = 0; m < 5; ++m) {
      write_seed(dir, "mode" + std::to_string(m),
                 mode(m, nums.generate(48)));
    }
  }

  // --- fuzz_sha_aead_diff -------------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_sha_aead_diff";
    write_seed(dir, "oneshot", mode(0, text("the quick brown fox")));
    Bytes split = mode(1);
    split.push_back(7);   // cut1
    split.push_back(64);  // cut2
    Bytes long_msg(200, 0x31);
    split.insert(split.end(), long_msg.begin(), long_msg.end());
    write_seed(dir, "streaming_splits", split);
    Bytes resume = mode(2);
    resume.push_back(2);  // blocks
    resume.insert(resume.end(), long_msg.begin(), long_msg.end());
    write_seed(dir, "export_resume", resume);
    Bytes aead = mode(3);
    const Bytes ikm(16, 0x11), nonce(12, 0x22);
    aead.insert(aead.end(), ikm.begin(), ikm.end());
    aead.insert(aead.end(), nonce.begin(), nonce.end());
    aead.push_back(5);  // flip lo
    aead.push_back(0);  // flip hi
    const Bytes ad_chunk = chunk(text("record-ad"));
    aead.insert(aead.end(), ad_chunk.begin(), ad_chunk.end());
    const Bytes pt = text("attested plaintext");
    aead.insert(aead.end(), pt.begin(), pt.end());
    write_seed(dir, "aead_roundtrip", aead);
  }

  // --- fuzz_persistence ---------------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_persistence";
    // A structurally genuine sealed blob (own key — the harness's golden
    // key differs, so this exercises the bad-seal path with a blob whose
    // framing is perfect).
    const Bytes seal_key = rng.generate(32);
    cas::MonotonicCounter counter;
    const Bytes sealed =
        cas::seal_state(seal_key, counter, text("state"), rng);
    write_seed(dir, "foreign_sealed_blob", mode(0, sealed));
    write_seed(dir, "corrupt_unseal", mode(1, Bytes{4, 0, 0, 0, 0x10,
                                                    9, 0, 0, 0}));
    // A genuine exported state for the import modes.
    quote::AttestationService attestation;
    cas::CasService cas(&attestation, key,
                        crypto::Drbg::from_seed(43, "gen-corpus-cas"));
    cas::Policy policy;
    policy.session_name = "p0";
    policy.expected_signer = crypto::sha256(key.public_key().modulus_be());
    policy.require_singleton = true;
    policy.config.program = "prog";
    cas.install_policy(policy);
    sgx::Measurement mr;
    mr.data.fill(0x5A);
    cas.register_token(token, "p0", mr);
    write_seed(dir, "import_genuine", mode(2, cas.export_state()));
    write_seed(dir, "import_corrupt_offset", mode(3, Bytes{12, 0, 0, 0, 2}));
    write_seed(dir, "roundtrip", mode(4));
  }

  // --- fuzz_secure_record -------------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_secure_record";
    ByteWriter record;
    record.u8(1);  // data record
    record.u64(1);
    record.u64(3);
    record.bytes(text("ciphertext?"));
    const Bytes data_record = std::move(record).take();
    write_seed(dir, "garbage_records", mode(0, chunk(data_record)));
    Bytes established = mode(1);
    const Bytes counter_bytes{9, 0, 0, 0, 0, 0, 0, 0};
    established.insert(established.end(), counter_bytes.begin(),
                       counter_bytes.end());
    const Bytes ct = chunk(text("forged"));
    established.insert(established.end(), ct.begin(), ct.end());
    write_seed(dir, "forged_established", established);
    write_seed(dir, "evil_handshake", mode(2, data_record));
    write_seed(dir, "evil_data_response", mode(3, data_record));
  }

  // --- fuzz_replication ---------------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_replication";
    cas::LogEntry entry;
    entry.term = 3;
    entry.command = cas::LogCommand::kSpendToken;
    entry.entry_id = (1ull << 56) | 7;
    cas::TokenCommand spend;
    spend.token = token;
    spend.session_name = "cluster";
    spend.mr_enclave.data.fill(0x3C);
    entry.payload = spend.serialize();
    write_seed(dir, "log_entry_spend", mode(0, entry.serialize()));
    write_seed(dir, "token_command", mode(0, spend.serialize()));

    cas::VoteRequestMsg vote;
    vote.term = 5;
    vote.candidate_id = 2;
    vote.last_log_index = 9;
    vote.last_log_term = 4;
    write_seed(dir, "vote_request", mode(1, vote.serialize()));

    cas::AppendRequestMsg append;
    append.term = 5;
    append.leader_id = 2;
    append.prev_log_index = 8;
    append.prev_log_term = 4;
    append.leader_commit = 8;
    append.entries.push_back(entry);
    write_seed(dir, "append_request", mode(2, append.serialize()));

    cas::SnapshotRequestMsg snap;
    snap.term = 6;
    snap.leader_id = 3;
    snap.last_included_index = 12;
    snap.last_included_term = 5;
    snap.state = text("exported-cas-state");
    write_seed(dir, "snapshot_request", mode(3, snap.serialize()));

    cas::RaftReply reply;
    reply.status = Status(StatusCode::kNotLeader, "not leader (leader=n2)");
    reply.body = cas::AppendResponseMsg{5, false, 0, 8}.serialize();
    write_seed(dir, "raft_reply", mode(4, reply.serialize()));

    write_seed(dir, "constructed_fields",
               mode(5, rng.generate(96)));
    write_seed(dir, "sealed_store", mode(6, rng.generate(64)));

    cas::Envelope raft_env;
    raft_env.version = cas::kReplicationVersion;
    raft_env.command = cas::Command::kVoteRequest;
    raft_env.request_id = 11;
    raft_env.payload = vote.serialize();
    write_seed(dir, "frame_vote", mode(7, mode(0, raft_env.serialize())));
    write_seed(dir, "frame_hostile",
               mode(7, mode(0, text("not an envelope at all"))));
  }

  // --- fuzz_protocol_session ----------------------------------------------
  {
    const stdfs::path dir = out / "fuzz_protocol_session";
    // Op streams: op byte % 7, then that op's operands (see the harness).
    write_seed(dir, "mint_attest_config",
               Bytes{0, 1,      // mint alpha
                     1,         // attest honest
                     3, 0,      // get_config from client 0
                     2,         // replay the spent token
                     4, 1, 1, 4, 0});  // introspect with a valid request
    write_seed(dir, "garbage_then_honest",
               Bytes{5, 4, 0, 'j', 'u', 'n', 'k',  // garbage instance frame
                     6, 2, 0, 'x', 'y',            // garbage secure record
                     0, 0,                          // mint beta
                     1});                           // attest it
    write_seed(dir, "double_mint", Bytes{0, 1, 0, 0, 1, 1, 2, 2});
  }

  std::printf("gen_corpus: seeds written under %s\n", out.string().c_str());
  return 0;
}
