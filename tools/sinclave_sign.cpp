// sinclave-sign — the enclave signer as a command-line tool (the
// counterpart of SCONE's signing step, extended with SinClave's base-hash
// emission).
//
// Usage:
//   sinclave_sign gen-key  <key-file> [bits]
//       Generate an RSA signing key (seeded from /dev/urandom) and write
//       it serialized (PRIVATE — upload only to the trusted verifier).
//   sinclave_sign make-image <image-file> <name> <code-bytes> <heap-bytes>
//       Build a deterministic synthetic enclave image (demo stand-in for
//       a compiled binary).
//   sinclave_sign sign <key-file> <image-file> <out-prefix> [--baseline]
//       Measure + sign. Writes <out-prefix>.sigstruct and (SinClave mode)
//       <out-prefix>.basehash.
//   sinclave_sign inspect <sigstruct-file>
//       Print the SigStruct's fields.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/serial.h"
#include "core/signer.h"
#include "crypto/drbg.h"

using namespace sinclave;

namespace {

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  return Bytes{std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, ByteView data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

crypto::Drbg os_seeded_rng() {
  Bytes seed(32, 0);
  std::ifstream urandom("/dev/urandom", std::ios::binary);
  urandom.read(reinterpret_cast<char*>(seed.data()),
               static_cast<std::streamsize>(seed.size()));
  return crypto::Drbg(seed, "sinclave-sign");
}

// The private key's wire format (tool-local): we regenerate the key pair
// from a stored seed, which keeps the format trivial and the key material
// reconstructible only with the file.
struct StoredKey {
  Bytes seed;
  std::uint32_t bits;
};

void cmd_gen_key(const std::string& path, std::size_t bits) {
  crypto::Drbg rng = os_seeded_rng();
  const Bytes seed = rng.generate(32);
  ByteWriter w;
  w.str("sinclave-key-v1");
  w.bytes(seed);
  w.u32(static_cast<std::uint32_t>(bits));
  write_file(path, w.data());
  // Derive once to print the public identity.
  crypto::Drbg key_rng(seed, "key");
  const auto key = crypto::RsaKeyPair::generate(key_rng, bits);
  std::printf("wrote %s (RSA-%zu)\nMRSIGNER: %s\n", path.c_str(), bits,
              crypto::sha256(key.public_key().modulus_be()).hex().c_str());
}

crypto::RsaKeyPair load_key(const std::string& path) {
  const Bytes file = read_file(path);  // named: ByteReader only holds a view
  ByteReader r(file);
  if (r.str() != "sinclave-key-v1") throw Error("not a sinclave key file");
  const Bytes seed = r.bytes();
  const std::uint32_t bits = r.u32();
  r.expect_done();
  crypto::Drbg key_rng(seed, "key");
  return crypto::RsaKeyPair::generate(key_rng, bits);
}

void cmd_make_image(const std::string& path, const std::string& name,
                    std::size_t code, std::uint64_t heap) {
  const core::EnclaveImage image = core::EnclaveImage::synthetic(name, code, heap);
  write_file(path, image.serialize());
  std::printf("wrote %s: %llu code pages + %llu heap pages + instance page\n",
              path.c_str(),
              static_cast<unsigned long long>(image.code_pages()),
              static_cast<unsigned long long>(image.heap_pages()));
}

void cmd_sign(const std::string& key_path, const std::string& image_path,
              const std::string& out_prefix, bool baseline) {
  const crypto::RsaKeyPair key = load_key(key_path);
  const core::EnclaveImage image =
      core::EnclaveImage::deserialize(read_file(image_path));
  const core::Signer signer(&key);

  if (baseline) {
    const core::SignedImage si = signer.sign_baseline(image);
    write_file(out_prefix + ".sigstruct", si.sigstruct.serialize());
    std::printf("MRENCLAVE: %s\nwrote %s.sigstruct\n",
                si.sigstruct.enclave_hash.hex().c_str(), out_prefix.c_str());
  } else {
    const core::SinclaveSignedImage si = signer.sign_sinclave(image);
    write_file(out_prefix + ".sigstruct", si.sigstruct.serialize());
    write_file(out_prefix + ".basehash", si.base_hash.encode());
    std::printf("common MRENCLAVE: %s\nbase hash bytes:  %llu\n"
                "wrote %s.sigstruct and %s.basehash\n",
                si.sigstruct.enclave_hash.hex().c_str(),
                static_cast<unsigned long long>(si.base_hash.state.byte_count),
                out_prefix.c_str(), out_prefix.c_str());
  }
}

void cmd_inspect(const std::string& path) {
  const sgx::SigStruct sig = sgx::SigStruct::deserialize(read_file(path));
  std::printf("enclave_hash : %s\n", sig.enclave_hash.hex().c_str());
  std::printf("mr_signer    : %s\n", sig.mr_signer().hex().c_str());
  std::printf("attributes   : flags=%#llx xfrm=%#llx\n",
              static_cast<unsigned long long>(sig.attributes.flags),
              static_cast<unsigned long long>(sig.attributes.xfrm));
  std::printf("isv          : prod_id=%u svn=%u\n", sig.isv_prod_id,
              sig.isv_svn);
  std::printf("date         : %u\n", sig.date);
  std::printf("debug_allowed: %s\n", sig.debug_allowed ? "yes" : "no");
  std::printf("signature    : %s\n",
              sig.signature_valid() ? "VALID" : "INVALID");
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sinclave_sign gen-key <key-file> [bits=3072]\n"
               "  sinclave_sign make-image <image-file> <name> <code-bytes> "
               "<heap-bytes>\n"
               "  sinclave_sign sign <key-file> <image-file> <out-prefix> "
               "[--baseline]\n"
               "  sinclave_sign inspect <sigstruct-file>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "gen-key" && argc >= 3) {
      cmd_gen_key(argv[2], argc > 3 ? std::stoul(argv[3]) : 3072);
    } else if (cmd == "make-image" && argc == 6) {
      cmd_make_image(argv[2], argv[3], std::stoul(argv[4]),
                     std::stoull(argv[5]));
    } else if (cmd == "sign" && argc >= 5) {
      const bool baseline =
          argc > 5 && std::string(argv[5]) == "--baseline";
      cmd_sign(argv[2], argv[3], argv[4], baseline);
    } else if (cmd == "inspect" && argc == 3) {
      cmd_inspect(argv[2]);
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
