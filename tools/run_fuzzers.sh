#!/usr/bin/env bash
# Build-and-run driver for the fuzz harnesses (fuzz/).
#
#   tools/run_fuzzers.sh --smoke [builddir]   deterministic short pass (CI gate)
#   tools/run_fuzzers.sh --long  [builddir]   open-ended fuzzing session
#
# The CMake configure writes <builddir>/fuzz_flavor:
#   libfuzzer   clang: coverage-guided libFuzzer binaries
#   standalone  gcc:   corpus replay + deterministic mutations under
#               ASan/UBSan (not coverage-guided — see fuzz/fuzz_util.h)
#
# Both modes replay the generated seed corpus AND the checked-in
# regression corpus (fuzz/corpus/regressions/) first, so every fixed
# crash stays fixed. --smoke uses fixed seeds and bounded run counts:
# two invocations on the same tree do exactly the same work.
#
# --long with libFuzzer grows a live corpus under <builddir>/corpus-live
# and honours FUZZ_TIME (seconds per harness, default 300). On a crash,
# libFuzzer leaves crash-* / the standalone driver leaves
# crash-<harness>.bin in the working directory: minimize it, move it to
# fuzz/corpus/regressions/<harness>-<what>.bin, and it becomes a tier-1
# regression test automatically (tests/test_fuzz_regression.cpp).
set -euo pipefail

mode="${1:---smoke}"
build="${2:-build-fuzz}"
root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

case "$mode" in
  --smoke|--long) ;;
  *) echo "usage: $0 [--smoke|--long] [builddir]" >&2; exit 2 ;;
esac

cmake -S . -B "$build" -DSINCLAVE_FUZZ=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build "$build" -j"$(nproc)" > /dev/null
flavor="$(cat "$build/fuzz_flavor")"

seeds="$build/corpus-seeds"
rm -rf "$seeds"
"$build/tools/gen_corpus" "$seeds"

# Mutation budgets per harness (smoke). The stateful harnesses spin up
# full attestation stacks per input; the pure decoders are ~free.
runs_for() {
  case "$1" in
    fuzz_protocol_session) echo 25 ;;
    fuzz_persistence|fuzz_secure_record) echo 60 ;;
    *) echo 400 ;;
  esac
}

status=0
for bin in "$build"/fuzz/fuzz_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  inputs=()
  [ -d "$seeds/$name" ] && inputs+=("$seeds/$name")
  regressions=(fuzz/corpus/regressions/"$name"-*)
  [ -e "${regressions[0]}" ] && inputs+=("${regressions[@]}")

  echo "=== $name ($flavor, $mode)"
  if [ "$flavor" = libfuzzer ]; then
    if [ "$mode" = --smoke ]; then
      "$bin" -seed=1 -runs="$(runs_for "$name")" -max_len=4096 \
             "${inputs[@]}" || status=1
    else
      live="$build/corpus-live/$name"
      mkdir -p "$live"
      "$bin" -seed=1 -max_total_time="${FUZZ_TIME:-300}" -max_len=4096 \
             "$live" "${inputs[@]}" || status=1
    fi
  else
    if [ "$mode" = --smoke ]; then
      "$bin" -seed=1 -runs="$(runs_for "$name")" -max_len=4096 \
             "${inputs[@]}" || status=1
    else
      "$bin" -seed=1 -runs=$(( $(runs_for "$name") * 100 )) -max_len=4096 \
             "${inputs[@]}" || status=1
    fi
  fi
done

if [ "$status" -ne 0 ]; then
  echo "run_fuzzers: FAILURES above — reproducers left in $(pwd)" >&2
  exit 1
fi
echo "run_fuzzers: all harnesses clean"
