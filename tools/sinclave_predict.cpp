// sinclave-predict — the verifier-side measurement predictor as a CLI:
// given a base hash and an instance-page specification, print the unique
// expected MRENCLAVE without touching the enclave binary.
//
// Usage:
//   sinclave_predict common <basehash-file>
//   sinclave_predict singleton <basehash-file> <token-hex32> <verifier-id-hex32>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.h"
#include "core/predictor.h"

using namespace sinclave;

namespace {

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  return Bytes{std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>()};
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  sinclave_predict common <basehash-file>\n"
               "  sinclave_predict singleton <basehash-file> <token-hex32> "
               "<verifier-id-hex32>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "common" && argc == 3) {
      const Bytes file = read_file(argv[2]);
      const core::BaseHash base = core::BaseHash::decode(file);
      std::printf("%s\n",
                  core::MeasurementPredictor::predict_common(base).hex().c_str());
    } else if (cmd == "singleton" && argc == 5) {
      const Bytes file = read_file(argv[2]);
      const core::BaseHash base = core::BaseHash::decode(file);
      core::InstancePage page;
      page.token = core::AttestationToken::from_view(from_hex(argv[3]));
      page.verifier_id = Hash256::from_view(from_hex(argv[4]));
      std::printf("%s\n",
                  core::MeasurementPredictor::predict(base, page).hex().c_str());
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
