#!/usr/bin/env python3
"""Repo invariant linter: fast, AST-free checks of documented invariants.

The repository's layering and concurrency rules are enforceable without a
compiler — they are confinement rules about which tokens may appear in
which files. This linter codifies the four documented ones:

  wire-confinement    Wire-protocol serialization (InstanceRequest &
                      friends ::serialize/::deserialize, the *_v0 legacy
                      encoders) stays inside src/cas/protocol.* and
                      src/cas/client.*. Everything else goes through the
                      shared frontend glue so the two serving frontends
                      answer identically.
  raw-mutex           No std::mutex / std::shared_mutex / std::lock_guard
                      / std::condition_variable (etc.) outside
                      src/common/mutex.h. All locking goes through
                      sinclave::Mutex so Clang thread-safety analysis and
                      the debug lock-rank detector see every acquisition.
                      (std::once_flag / std::call_once stay allowed: they
                      are not lock-order-relevant.)
  status-strings      The canonical error texts live in ONE table —
                      status_message() in src/common/status.cpp. No other
                      src/ file may repeat one as a string literal; compose
                      with status_message(StatusCode::...) instead, so the
                      frontends can never drift.
  status-details      Structured status-detail fragments that clients parse
                      back out ("retry-after-ms=", "circuit breaker open")
                      are a wire contract: composed and parsed ONLY by the
                      helpers in src/common/status.cpp (retry_after_detail,
                      parse_retry_after, breaker_open_detail). No other
                      src/ file may embed the format as a literal.
  alloc-free          Files on the allocation-free signing hot path
                      (asserted by tests/test_alloc.cpp's counting
                      operator new) must not contain allocation tokens
                      (new / malloc / make_unique / ...) at all.
  fuzz-coverage       Every attacker-facing decoder — wire types with a
                      static deserialize in src/cas/protocol.h, the
                      decode/parse/serve free functions there, unseal_state
                      in src/cas/persistence.h, and the status parsers in
                      src/common/status.h — must be exercised by name in
                      at least one fuzz harness body (fuzz/fuzz_*.cpp). A
                      new decoder cannot land unfuzzed.

Diagnostics are file:line, exit status is nonzero when anything fired.
--self-test seeds one violation of each class in a temp tree and checks
every rule both fires on it and stays quiet on a clean tree.
"""

import argparse
import re
import sys
import tempfile
from pathlib import Path

SOURCE_GLOBS = ("*.h", "*.cpp")

# --- rule scopes -----------------------------------------------------------

WIRE_ALLOWED = {
    "src/cas/protocol.h",
    "src/cas/protocol.cpp",
    "src/cas/client.h",
    "src/cas/client.cpp",
}

MUTEX_ALLOWED = {
    "src/common/mutex.h",
    "src/common/mutex.cpp",
    "src/common/thread_annotations.h",
}

STATUS_TABLE = "src/common/status.cpp"

# The signing hot path: tests/test_alloc.cpp proves these allocation-free
# at runtime; the lint proves nobody reintroduces an allocation token.
ALLOC_FREE_FILES = (
    "src/crypto/bignum.h",
    "src/crypto/bignum.cpp",
    "src/crypto/sha256.cpp",
    "src/crypto/sha256_fast.cpp",
    "src/crypto/hmac.cpp",
)

WIRE_TYPES = (
    "InstanceRequest|InstanceResponse|ConfigResponse|AttestPayload|"
    "IntrospectRequest|IntrospectResponse"
)
RE_WIRE = re.compile(
    r"\b(?:%s)\s*::\s*(?:serialize|deserialize)\b"
    r"|\b(?:serialize_v0|deserialize_v0)\s*\(" % WIRE_TYPES
)

RE_RAW_MUTEX = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|try_to_lock|defer_lock|adopt_lock)\b"
)

RE_ALLOC = re.compile(
    r"\bnew\b|\bmalloc\b|\bcalloc\b|\brealloc\b|\bstrdup\b|"
    r"\bmake_unique\b|\bmake_shared\b"
)

# Only table entries this long are distinctive enough to lint on ("ok"
# and other short strings would false-positive everywhere).
STATUS_MIN_LEN = 10

# Structured detail fragments clients parse back out of a Status — wire
# contract, composed/parsed only by the src/common/status.cpp helpers.
DETAIL_FRAGMENTS = ("retry-after-ms=", "circuit breaker open",
                    "leader=")

# Headers whose byte-facing decoders the fuzz layer must cover. A header
# that does not exist is skipped (the rule is about decoders that DO
# exist going unfuzzed, not about repo layout).
FUZZ_DECODER_HEADERS = (
    "src/cas/protocol.h",
    "src/cas/persistence.h",
    "src/cas/replication.h",
    "src/common/status.h",
)

# `static T deserialize(...)` declarations: the return type names the wire
# type, which is exactly the token a harness uses (stable<cas::T>, ...).
RE_FUZZ_STRUCT_DECODER = re.compile(
    r"static\s+(\w+)\s+deserialize(?:_v0)?\s*\(")

# Free-function decoders/parsers of attacker-controlled bytes.
RE_FUZZ_FREE_DECODER = re.compile(
    r"\b((?:decode|parse|unseal)_\w+|serve_\w+_frame|"
    r"status_code_from_\w+)\s*\(")


def strip_code(text, blank_strings):
    """Replace comments (and optionally string/char literals) with spaces.

    Line structure is preserved so match offsets map back to line numbers.
    Handles // and /* */ comments, escape sequences, and the simple raw
    string form R"(...)" used in this codebase.
    """
    out = []
    n = len(text)
    i = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "R" and text[i : i + 3] == 'R"(':
            j = text.find(')"', i + 3)
            j = n if j == -1 else j + 2
            seg = text[i:j]
            if blank_strings:
                seg = "".join(ch if ch == "\n" else " " for ch in seg)
            out.append(seg)
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            seg = text[i:j]
            if blank_strings:
                seg = quote + " " * max(0, len(seg) - 2) + (
                    quote if seg.endswith(quote) and len(seg) > 1 else ""
                )
            out.append(seg)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def iter_sources(root):
    src = root / "src"
    if not src.is_dir():
        return
    for pattern in SOURCE_GLOBS:
        yield from sorted(src.rglob(pattern))


def rel(root, path):
    return path.relative_to(root).as_posix()


def status_literals(root):
    """String literals of the status_message() table (the canonical texts)."""
    table = root / STATUS_TABLE
    if not table.is_file():
        return []
    text = table.read_text(encoding="utf-8")
    match = re.search(r"const\s+char\s*\*\s*status_message\b", text)
    if match is None:
        return []
    # The function body ends at the first close brace in column zero.
    end = text.find("\n}", match.start())
    body = text[match.start() : end if end != -1 else len(text)]
    literals = re.findall(r'return\s+"((?:[^"\\]|\\.)*)"', body)
    return [lit for lit in literals if len(lit) >= STATUS_MIN_LEN]


def check_wire(root, findings):
    for path in iter_sources(root):
        relpath = rel(root, path)
        if relpath in WIRE_ALLOWED:
            continue
        text = strip_code(path.read_text(encoding="utf-8"), blank_strings=True)
        for m in RE_WIRE.finditer(text):
            findings.append(
                (relpath, line_of(text, m.start()), "wire-confinement",
                 "wire-protocol serialization '%s' outside "
                 "src/cas/protocol.*|client.* — route through the shared "
                 "frontend glue (serve_instance_frame & friends)"
                 % " ".join(m.group(0).split())))


def check_raw_mutex(root, findings):
    for path in iter_sources(root):
        relpath = rel(root, path)
        if relpath in MUTEX_ALLOWED:
            continue
        text = strip_code(path.read_text(encoding="utf-8"), blank_strings=True)
        for m in RE_RAW_MUTEX.finditer(text):
            findings.append(
                (relpath, line_of(text, m.start()), "raw-mutex",
                 "raw '%s' outside common/mutex.h — use sinclave::Mutex/"
                 "SharedMutex/CondVar so thread-safety analysis and the "
                 "lock-rank detector see it" % m.group(0)))


def check_status_strings(root, findings):
    literals = status_literals(root)
    if not literals:
        findings.append(
            (STATUS_TABLE, 1, "status-strings",
             "could not extract the status_message() table "
             "(moved or renamed? update tools/lint_invariants.py)"))
        return
    for path in iter_sources(root):
        relpath = rel(root, path)
        if relpath == STATUS_TABLE:
            continue
        # Comments stripped, string literals kept: the rule is about
        # duplicated message *strings*, not prose mentioning a message.
        text = strip_code(path.read_text(encoding="utf-8"),
                          blank_strings=False)
        for lit in literals:
            for m in re.finditer(re.escape('"' + lit + '"'), text):
                findings.append(
                    (relpath, line_of(text, m.start()), "status-strings",
                     'canonical error text "%s" duplicated outside the '
                     "status_message table — compose with "
                     "status_message(StatusCode::...)" % lit))


def check_status_details(root, findings):
    for path in iter_sources(root):
        relpath = rel(root, path)
        if relpath == STATUS_TABLE:
            continue
        # Comments stripped, string literals kept: prose may discuss the
        # format, code may not embed it.
        text = strip_code(path.read_text(encoding="utf-8"),
                          blank_strings=False)
        for frag in DETAIL_FRAGMENTS:
            for m in re.finditer(re.escape(frag), text):
                findings.append(
                    (relpath, line_of(text, m.start()), "status-details",
                     "status-detail format fragment '%s' outside "
                     "src/common/status.cpp — compose/parse with "
                     "retry_after_detail / parse_retry_after / "
                     "breaker_open_detail" % frag))


def check_alloc_free(root, findings):
    for relpath in ALLOC_FREE_FILES:
        path = root / relpath
        if not path.is_file():
            continue
        text = strip_code(path.read_text(encoding="utf-8"), blank_strings=True)
        for m in RE_ALLOC.finditer(text):
            findings.append(
                (relpath, line_of(text, m.start()), "alloc-free",
                 "allocation token '%s' in a file tests/test_alloc.cpp "
                 "asserts allocation-free" % m.group(0)))


def check_fuzz_coverage(root, findings):
    harness_text = ""
    fuzz_dir = root / "fuzz"
    if fuzz_dir.is_dir():
        for path in sorted(fuzz_dir.glob("fuzz_*.cpp")):
            harness_text += strip_code(
                path.read_text(encoding="utf-8"), blank_strings=True)
    for relpath in FUZZ_DECODER_HEADERS:
        path = root / relpath
        if not path.is_file():
            continue
        text = strip_code(path.read_text(encoding="utf-8"),
                          blank_strings=True)
        seen = set()
        for regex in (RE_FUZZ_STRUCT_DECODER, RE_FUZZ_FREE_DECODER):
            for m in regex.finditer(text):
                symbol = m.group(1)
                if symbol in seen:
                    continue
                seen.add(symbol)
                if re.search(r"\b%s\b" % re.escape(symbol), harness_text):
                    continue
                findings.append(
                    (relpath, line_of(text, m.start()), "fuzz-coverage",
                     "decoder '%s' is not exercised by any fuzz harness "
                     "body (fuzz/fuzz_*.cpp) — attacker-facing byte "
                     "parsers must be fuzzed" % symbol))


CHECKS = (check_wire, check_raw_mutex, check_status_strings,
          check_status_details, check_alloc_free, check_fuzz_coverage)


def run_all(root):
    findings = []
    for check in CHECKS:
        check(root, findings)
    return sorted(findings)


# --- self test -------------------------------------------------------------

SELFTEST_STATUS_CPP = '''
#include "common/status.h"
const char* status_message(StatusCode code) {
  switch (code) {
    case StatusCode::kTokenReused:
      return "token already spent";
  }
  return "internal error";
}
'''

# One file per violation class; each also carries a line that must NOT
# fire (comment/string forms), proving the stripper does its job.
SELFTEST_VIOLATIONS = {
    "src/server/bad_wire.cpp": (
        "// InstanceRequest::deserialize in a comment is fine\n"
        "auto r = InstanceRequest::deserialize(raw);\n",
        "wire-confinement",
    ),
    "src/server/bad_mutex.cpp": (
        "// prose about std::mutex stays legal\n"
        "static std::mutex m;\n",
        "raw-mutex",
    ),
    "src/server/bad_status.cpp": (
        'throw Error("token already spent");\n',
        "status-strings",
    ),
    "src/server/bad_detail.cpp": (
        "// prose saying retry-after-ms= in a comment stays legal\n"
        'resp.status.detail = "try later (retry-after-ms=5)";\n',
        "status-details",
    ),
    "src/crypto/bignum.cpp": (
        "// never reallocates (comment token must not fire)\n"
        "int* leak = new int;\n",
        "alloc-free",
    ),
    # A wire type with a deserialize and no fuzz/ harness mentioning it.
    # (The temp tree has no fuzz/ directory at all, which is the same
    # failure mode as an unfuzzed decoder.)
    "src/cas/protocol.h": (
        "// a comment saying static Bar deserialize( must not fire\n"
        "struct UnfuzzedThing {\n"
        "  static UnfuzzedThing deserialize(ByteView data);\n"
        "};\n",
        "fuzz-coverage",
    ),
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        root = Path(tmp)
        (root / "src/common").mkdir(parents=True)
        (root / "src/common/status.cpp").write_text(SELFTEST_STATUS_CPP)

        # Clean tree: nothing may fire.
        clean = run_all(root)
        if clean:
            failures.append("clean tree produced findings: %r" % (clean,))

        for relpath, (content, _) in SELFTEST_VIOLATIONS.items():
            path = root / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)

        findings = run_all(root)
        fired = {rule for (_, _, rule, _) in findings}
        for relpath, (_, rule) in SELFTEST_VIOLATIONS.items():
            hits = [f for f in findings if f[0] == relpath and f[2] == rule]
            if len(hits) != 1:
                failures.append(
                    "rule %s: expected exactly 1 finding in %s, got %r"
                    % (rule, relpath, hits))
        unexpected = len(findings) - len(SELFTEST_VIOLATIONS)
        if unexpected:
            failures.append("unexpected extra findings: %r" % (findings,))
        if fired != {r for (_, r) in SELFTEST_VIOLATIONS.values()}:
            failures.append("rules fired: %r" % (sorted(fired),))

    for failure in failures:
        print("self-test FAIL: %s" % failure, file=sys.stderr)
    if not failures:
        print("self-test: all %d violation classes detected, clean tree "
              "clean" % len(SELFTEST_VIOLATIONS))
    return 1 if failures else 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="seed one violation per rule in a temp tree and verify each "
             "is caught (and that a clean tree passes)")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    findings = run_all(args.root)
    for relpath, line, rule, message in findings:
        print("%s:%d: [%s] %s" % (relpath, line, rule, message))
    if findings:
        print("%d invariant violation(s)" % len(findings), file=sys.stderr)
        return 1
    print("lint_invariants: OK (%d rules)" % len(CHECKS))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
