#!/usr/bin/env bash
# Run every benchmark and collect output under bench-results/ — one file
# per bench plus a combined log. Used to track the performance trajectory
# across PRs.
#
# Usage: tools/run_benches.sh [build-dir] [out-dir]
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
combined="$OUT_DIR/all.txt"
: > "$combined"

status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  out="$OUT_DIR/$name.txt"
  if "$bench" > "$out" 2>&1; then
    echo "    ok ($(wc -l < "$out") lines) -> $out"
  else
    echo "    FAILED (see $out)"
    status=1
  fi
  { echo "=== $name ==="; cat "$out"; echo; } >> "$combined"
done

echo
echo "combined output: $combined"
exit "$status"
