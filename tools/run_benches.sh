#!/usr/bin/env bash
# Run every benchmark and collect output under bench-results/ — one file
# per bench plus a combined log. Used to track the performance trajectory
# across PRs.
#
# Five benches additionally emit machine-readable trajectory records:
#   BENCH_signing.json — bench_fig7a_signing via the Google Benchmark JSON
#     writer (BM_RsaSign3072's items_per_second is the sign ops/s series)
#   BENCH_fleet.json   — bench_fleet_throughput --json (closed/open-loop
#     ops/s + p50/p99, cache-hit latencies, serial-vs-batched mint cost)
#   BENCH_attest.json  — bench_attest_throughput --json (attested full-
#     session throughput per worker count, stripe collisions, scaling
#     gate; committed baseline lives in bench/baselines/)
#   BENCH_chaos.json   — bench_chaos --json (the named chaos scenarios:
#     per-scenario pass/fail, ops/ok/typed-failure counts, faults
#     injected, shed + deadline refusals, breaker trips; the bench exits
#     nonzero — failing the run — unless every scenario passed)
#   BENCH_cluster.json — bench_cluster --json (kill-the-leader failover
#     gate on the 3-node replicated CAS: per-phase spend throughput,
#     recovery latency, leader redirects, and the cluster-wide
#     zero-double-spend ledger audit; exits nonzero unless every gate
#     holds)
#
# Usage: tools/run_benches.sh [build-dir] [out-dir]
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
combined="$OUT_DIR/all.txt"
: > "$combined"

status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  out="$OUT_DIR/$name.txt"

  # Per-bench extra flags for the machine-readable outputs; expected_json
  # names the file the bench MUST produce (checked below — a bench that
  # silently stops emitting its trajectory record is a failed run).
  extra_args=()
  expected_json=""
  case "$name" in
    bench_fig7a_signing)
      expected_json="$OUT_DIR/BENCH_signing.json"
      extra_args=(--benchmark_out="$expected_json"
                  --benchmark_out_format=json)
      ;;
    bench_fleet_throughput)
      expected_json="$OUT_DIR/BENCH_fleet.json"
      extra_args=(--json "$expected_json")
      ;;
    bench_attest_throughput)
      expected_json="$OUT_DIR/BENCH_attest.json"
      extra_args=(--json "$expected_json")
      ;;
    bench_chaos)
      expected_json="$OUT_DIR/BENCH_chaos.json"
      extra_args=(--json "$expected_json")
      ;;
    bench_cluster)
      expected_json="$OUT_DIR/BENCH_cluster.json"
      extra_args=(--json "$expected_json")
      ;;
  esac
  # Stale records must not mask a bench that stopped writing.
  [ -n "$expected_json" ] && rm -f "$expected_json"

  # ${arr[@]+...} keeps `set -u` happy on bash 3.2 when the array is empty.
  if "$bench" ${extra_args[@]+"${extra_args[@]}"} > "$out" 2>&1; then
    echo "    ok ($(wc -l < "$out") lines) -> $out"
  else
    echo "    FAILED (see $out)"
    status=1
  fi
  if [ -n "$expected_json" ] && [ ! -s "$expected_json" ]; then
    echo "    FAILED: expected JSON record $expected_json missing or empty"
    echo "FAILED: $name emitted no JSON at $expected_json" >> "$combined"
    status=1
  fi
  { echo "=== $name ==="; cat "$out"; echo; } >> "$combined"
done

# Keep a run-stamped copy of every trajectory record under
# bench-results/history/ so successive runs accumulate a comparable
# series instead of overwriting each other.
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
mkdir -p "$OUT_DIR/history"
for json in BENCH_signing.json BENCH_fleet.json BENCH_attest.json \
            BENCH_chaos.json BENCH_cluster.json; do
  if [ -f "$OUT_DIR/$json" ]; then
    cp "$OUT_DIR/$json" "$OUT_DIR/history/${json%.json}-$stamp.json"
    echo "trajectory record: $OUT_DIR/$json" \
         "(history/${json%.json}-$stamp.json)"
  fi
done

if [ "$status" -ne 0 ]; then
  echo "BENCH RUN FAILED (status=$status)" | tee -a "$combined"
fi

echo
echo "combined output: $combined"
exit "$status"
