// Fig. 6 — "Calculation of a SHA256 checksum with different
// implementations", plus the constant base-hash finalization time.
//
// Series (paper -> here):
//   Ring                -> Sha256Fast (optimized one-shot)
//   SinClave            -> Sha256 (interruptible), full finalization
//   SinClave-BaseHash   -> Sha256 (interruptible), suspend + encode instead
//                          of finalizing (wins on small buffers because it
//                          skips the finalization round)
//   finalization        -> resume exported state + finalize only
//                          (the paper's constant 32 us)
//
// Expected shape: Fast is fastest at every size (roughly constant MB/s);
// the interruptible variants track each other at ~0.4-0.6x of Fast;
// BaseHash beats plain SinClave on small buffers; finalization is O(1).
#include <benchmark/benchmark.h>

#include "core/base_hash.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "crypto/sha256_fast.h"

namespace {

using namespace sinclave;

Bytes make_buffer(std::size_t size) {
  crypto::Drbg rng = crypto::Drbg::from_seed(6, "fig6");
  return rng.generate(size);
}

void BM_Ring(benchmark::State& state) {
  const Bytes buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Sha256Fast h;
    h.update(buf);
    benchmark::DoNotOptimize(h.finalize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_SinClave(benchmark::State& state) {
  const Bytes buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Sha256 h;
    h.update(buf);
    benchmark::DoNotOptimize(h.finalize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_SinClaveBaseHash(benchmark::State& state) {
  // Buffer sizes are 64-byte multiples, so the state is always exportable
  // — exactly the situation of an enclave measurement stream.
  const Bytes buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Sha256 h;
    h.update(buf);
    benchmark::DoNotOptimize(h.export_state().encode());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_BaseHashFinalization(benchmark::State& state) {
  // Constant-time: resume a suspended measurement and finalize it.
  crypto::Sha256 h;
  h.update(make_buffer(static_cast<std::size_t>(state.range(0))));
  const crypto::Sha256State suspended = h.export_state();
  for (auto _ : state) {
    crypto::Sha256 resumed = crypto::Sha256::resume(suspended);
    benchmark::DoNotOptimize(resumed.finalize());
  }
}

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * kKiB;

#define SHA_SIZES                                                       \
  Arg(2 * kKiB)->Arg(16 * kKiB)->Arg(128 * kKiB)->Arg(1 * kMiB)         \
      ->Arg(8 * kMiB)->Arg(64 * kMiB)

BENCHMARK(BM_Ring)->SHA_SIZES;
BENCHMARK(BM_SinClave)->SHA_SIZES;
BENCHMARK(BM_SinClaveBaseHash)->SHA_SIZES;
// Finalization cost must not depend on how much was hashed before.
BENCHMARK(BM_BaseHashFinalization)->Arg(2 * kKiB)->Arg(64 * kMiB);

}  // namespace

BENCHMARK_MAIN();
