// Kill-the-leader failover gate (ISSUE 10): a 3-node replicated CAS
// cluster serves an attested-spend fleet through a scripted leader kill
// and restart, and the run *gates* on the replication invariants rather
// than just reporting throughput:
//
//   * zero double-spends, asserted over ALL nodes — every replica must
//     converge to exactly the client-observed spend count,
//   * bounded recovery — the first post-kill spend lands within
//     --recovery-bound-ms of the kill,
//   * availability through the window — spends succeed before the kill,
//     during the failover window (clients chase kNotLeader hints to the
//     successor), and after the killed node rejoins,
//   * typed failures only — no exception ever escapes the SDK/harness.
//
// Flags: --smoke shrinks the windows for sanitizer CI; --json F writes
// the machine-readable record (tools/run_benches.sh points it at
// BENCH_cluster.json); --seed N reseeds the whole platform. Exit status
// is 0 iff every gate holds.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cas/client.h"
#include "common/error.h"
#include "workload/cluster.h"

using namespace sinclave;
using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

namespace {

struct PhaseCounts {
  std::atomic<std::uint64_t> spent{0};
  std::atomic<std::uint64_t> failed{0};
};

double per_second(std::uint64_t ops, std::chrono::milliseconds window) {
  if (window.count() == 0) return 0.0;
  return static_cast<double>(ops) * 1000.0 /
         static_cast<double>(window.count());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  std::uint64_t seed = 1;
  std::int64_t recovery_bound_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--recovery-bound-ms") == 0 && i + 1 < argc)
      recovery_bound_ms = std::strtoll(argv[++i], nullptr, 10);
  }

  const std::size_t fleet = smoke ? 2 : 3;
  const std::chrono::milliseconds window(smoke ? 300 : 1000);

  workload::ClusterBedConfig config;
  config.seed = seed;
  config.nodes = 3;
  config.raft.propose_timeout = 500ms;
  workload::ClusterBed bed(config);
  const std::size_t leader = bed.bootstrap();
  std::printf("bench_cluster: 3 nodes, fleet=%zu, window=%lld ms, "
              "seed=%llu%s — leader is node %zu\n",
              fleet, static_cast<long long>(window.count()),
              static_cast<unsigned long long>(seed), smoke ? " [smoke]" : "",
              leader + 1);

  // Phases: 0 = pre-kill, 1 = failover window (leader dead), 2 = healed
  // (killed node restarted). Workers bucket each spend by the phase at
  // completion time.
  std::atomic<int> phase{0};
  std::atomic<bool> run{true};
  std::atomic<std::uint64_t> untyped{0};
  std::atomic<std::int64_t> first_recovered_ns{0};
  PhaseCounts counts[3];

  std::vector<cas::CasClient> clients;
  clients.reserve(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    cas::RetryPolicy retry;
    retry.max_attempts = 4;
    // Pace the no-leader interval: hint-driven redirects stay immediate,
    // but blind retries while the successor campaigns back off in ms, not
    // the 200us default — the fleet probes, it does not storm.
    retry.initial_backoff = std::chrono::microseconds(1000);
    retry.max_backoff = std::chrono::microseconds(20'000);
    clients.push_back(bed.make_client(leader, retry));
  }

  Clock::time_point killed_at{};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < fleet; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t nonce = w * 1'000'000;
      while (run.load(std::memory_order_acquire)) {
        try {
          const workload::ClusterBed::SpendOutcome got =
              bed.attested_spend(clients[w], ++nonce);
          const int p = phase.load(std::memory_order_acquire);
          if (got.spent()) {
            counts[p].spent.fetch_add(1, std::memory_order_relaxed);
            if (p >= 1) {
              std::int64_t expected = 0;
              first_recovered_ns.compare_exchange_strong(
                  expected,
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now().time_since_epoch())
                      .count());
            }
          } else {
            counts[p].failed.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (...) {
          untyped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(window);  // phase 0: healthy cluster

  killed_at = Clock::now();
  bed.node(leader).stop();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(window);  // phase 1: failover + successor

  bed.node(leader).start();  // rejoin from the sealed log
  phase.store(2, std::memory_order_release);
  std::this_thread::sleep_for(window);  // phase 2: healed, 3 nodes again

  run.store(false, std::memory_order_release);
  for (std::thread& t : workers) t.join();

  const std::uint64_t pre = counts[0].spent.load();
  const std::uint64_t during = counts[1].spent.load();
  const std::uint64_t post = counts[2].spent.load();
  const std::uint64_t total_spent = pre + during + post;

  double recovery_ms = -1.0;
  if (first_recovered_ns.load() != 0) {
    recovery_ms =
        static_cast<double>(
            first_recovered_ns.load() -
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                killed_at.time_since_epoch())
                .count()) /
        1e6;
  }

  std::uint64_t redirects = 0;
  for (cas::CasClient& c : clients) redirects += c.stats().leader_redirects;

  // The ledger close: every running replica must agree on exactly the
  // client-observed spend count. Any divergence — a double apply, a lost
  // spend, a replica that forgot — fails the gate.
  const workload::ClusterBed::SpendAudit audit =
      bed.audit_spends(total_spent, 10'000ms);
  std::int64_t double_spends = 0;
  for (std::size_t used : audit.used) {
    const std::int64_t extra =
        static_cast<std::int64_t>(used) - static_cast<std::int64_t>(total_spent);
    if (extra > double_spends) double_spends = extra;
  }

  struct Gate {
    const char* name;
    bool ok;
  };
  std::vector<Gate> gates = {
      {"ledger converged on every node (zero double-spends)",
       audit.converged && double_spends == 0},
      {"spends succeeded before the kill", pre > 0},
      {"spends succeeded during the failover window", during > 0},
      {"spends succeeded after the killed node rejoined", post > 0},
      {"recovery within bound",
       recovery_ms >= 0.0 &&
           recovery_ms <= static_cast<double>(recovery_bound_ms)},
      {"no untyped failures escaped the harness", untyped.load() == 0},
  };
  bool all_passed = true;
  for (const Gate& g : gates) all_passed = all_passed && g.ok;

  std::printf("  pre-kill:  %llu spends (%.1f/s)\n",
              static_cast<unsigned long long>(pre), per_second(pre, window));
  std::printf("  failover:  %llu spends (%.1f/s), recovery %.1f ms\n",
              static_cast<unsigned long long>(during),
              per_second(during, window), recovery_ms);
  std::printf("  post-heal: %llu spends (%.1f/s)\n",
              static_cast<unsigned long long>(post), per_second(post, window));
  std::printf("  redirects=%llu failed=[%llu,%llu,%llu] untyped=%llu\n",
              static_cast<unsigned long long>(redirects),
              static_cast<unsigned long long>(counts[0].failed.load()),
              static_cast<unsigned long long>(counts[1].failed.load()),
              static_cast<unsigned long long>(counts[2].failed.load()),
              static_cast<unsigned long long>(untyped.load()));
  if (!audit.converged) std::printf("  LEDGER: %s\n", audit.detail.c_str());
  for (const Gate& g : gates)
    std::printf("  gate %-52s %s\n", g.name, g.ok ? "PASS" : "FAIL");
  std::printf("bench_cluster: %s\n", all_passed ? "ALL PASS" : "FAILURES");

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f, "{\n");
      std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
      std::fprintf(f, "  \"seed\": %llu,\n",
                   static_cast<unsigned long long>(seed));
      std::fprintf(f, "  \"nodes\": 3,\n  \"fleet\": %zu,\n", fleet);
      std::fprintf(f, "  \"window_ms\": %lld,\n",
                   static_cast<long long>(window.count()));
      std::fprintf(f, "  \"pre_kill_spends\": %llu,\n",
                   static_cast<unsigned long long>(pre));
      std::fprintf(f, "  \"during_spends\": %llu,\n",
                   static_cast<unsigned long long>(during));
      std::fprintf(f, "  \"post_heal_spends\": %llu,\n",
                   static_cast<unsigned long long>(post));
      std::fprintf(f, "  \"pre_kill_per_s\": %.3f,\n",
                   per_second(pre, window));
      std::fprintf(f, "  \"during_per_s\": %.3f,\n",
                   per_second(during, window));
      std::fprintf(f, "  \"post_heal_per_s\": %.3f,\n",
                   per_second(post, window));
      std::fprintf(f, "  \"recovery_ms\": %.3f,\n", recovery_ms);
      std::fprintf(f, "  \"recovery_bound_ms\": %lld,\n",
                   static_cast<long long>(recovery_bound_ms));
      std::fprintf(f, "  \"leader_redirects\": %llu,\n",
                   static_cast<unsigned long long>(redirects));
      std::fprintf(f, "  \"double_spends\": %lld,\n",
                   static_cast<long long>(double_spends));
      std::fprintf(f, "  \"ledger_converged\": %s,\n",
                   audit.converged ? "true" : "false");
      std::fprintf(f, "  \"untyped_failures\": %llu,\n",
                   static_cast<unsigned long long>(untyped.load()));
      std::fprintf(f, "  \"gates\": [\n");
      for (std::size_t i = 0; i < gates.size(); ++i)
        std::fprintf(f, "    {\"name\": \"%s\", \"passed\": %s}%s\n",
                     gates[i].name, gates[i].ok ? "true" : "false",
                     i + 1 < gates.size() ? "," : "");
      std::fprintf(f, "  ],\n  \"all_passed\": %s\n}\n",
                   all_passed ? "true" : "false");
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    } else {
      std::printf("WARNING: could not open %s for writing\n", json_path);
    }
  }
  return all_passed ? 0 : 1;
}
