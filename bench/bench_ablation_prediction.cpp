// Ablation — why the interruptible SHA-256 / base-hash design exists.
//
// The verifier must know the expected MRENCLAVE of every singleton enclave
// it issues a token for. Two ways to get it:
//
//   remeasure : hash the entire enclave construction stream per token
//               (no interruptible SHA needed, but O(enclave size) work on
//               the verifier for EVERY instance; the verifier also needs
//               the full binary image)
//   base-hash : resume the suspended state and hash one page + finalize
//               (SinClave: O(1) per instance, no binary needed)
//
// The crossover is immediate and the gap grows linearly with enclave size
// — this is the quantitative argument for the paper's §4.4 mechanism.
#include <benchmark/benchmark.h>

#include <map>

#include "core/predictor.h"
#include "sgx/measurement.h"
#include "core/signer.h"
#include "crypto/drbg.h"

namespace {

using namespace sinclave;

struct Prepared {
  core::EnclaveImage image;
  core::BaseHash base_hash;
};

const Prepared& prepared(std::int64_t heap_mb) {
  static std::map<std::int64_t, Prepared> cache;
  auto it = cache.find(heap_mb);
  if (it == cache.end()) {
    crypto::Drbg rng = crypto::Drbg::from_seed(99, "ablation");
    static const crypto::RsaKeyPair key = crypto::RsaKeyPair::generate(rng, 1024);
    core::EnclaveImage image = core::EnclaveImage::synthetic(
        "ablation-" + std::to_string(heap_mb), 64 << 10,
        static_cast<std::uint64_t>(heap_mb) << 20);
    const core::Signer signer(&key);
    core::BaseHash bh = signer.sign_sinclave(image).base_hash;
    it = cache.emplace(heap_mb, Prepared{std::move(image), bh}).first;
  }
  return it->second;
}

core::InstancePage page_for(std::uint8_t i) {
  core::InstancePage page;
  page.token = core::AttestationToken::from_view(Bytes(32, i));
  page.verifier_id = Hash256::from_view(Bytes(32, 0x42));
  return page;
}

void BM_PredictFromBaseHash(benchmark::State& state) {
  const Prepared& p = prepared(state.range(0));
  std::uint8_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::MeasurementPredictor::predict(p.base_hash, page_for(++i)));
  }
}

void BM_NaiveFullRemeasure(benchmark::State& state) {
  const Prepared& p = prepared(state.range(0));
  // The verifier re-derives the whole measurement per instance. Uses the
  // interruptible hasher like the SinClave verifier would; the point is
  // the O(enclave) vs O(page) asymptotic, not the hasher flavour.
  std::uint8_t i = 0;
  for (auto _ : state) {
    const core::InstancePage page = page_for(++i);
    sgx::MeasurementLog log;
    log.ecreate(p.image.ssa_frame_size, p.image.total_size());
    for (std::uint64_t pg = 0; pg < p.image.code_pages(); ++pg)
      log.add_measured_page(pg * sgx::kPageSize, sgx::SecInfo::reg_rx(),
                            p.image.code_page(pg));
    const Bytes zero_page(sgx::kPageSize, 0);
    const std::uint64_t heap_base = p.image.code_bytes_padded();
    for (std::uint64_t pg = 0; pg < p.image.heap_pages(); ++pg)
      log.add_measured_page(heap_base + pg * sgx::kPageSize,
                            sgx::SecInfo::reg_rw(), zero_page);
    log.add_measured_page(p.image.instance_page_offset(),
                          sgx::SecInfo::reg_rw(), page.render());
    benchmark::DoNotOptimize(log.finalize());
  }
}

BENCHMARK(BM_PredictFromBaseHash)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NaiveFullRemeasure)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
