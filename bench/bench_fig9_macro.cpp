// Fig. 9 — "The performance overhead of SinClave with real-world
// workloads": Python (+encrypted volume), OpenVINO classification, PyTorch
// CIFAR-10 training, each run under the baseline flow and under SinClave.
//
// Paper overheads: Python +1.03%, OpenVINO +2.49%, PyTorch +13.2%.
// The overhead emerges mechanistically: SinClave adds a near-constant cost
// per enclave start (token retrieval + on-demand SigStruct + singleton
// attestation), and the workloads differ in enclave starts per run (PyTorch
// spawns dataloader workers) and in baseline runtime. See
// src/workload/workloads.h for the workload models.
#include <cstdio>

#include "workload/workloads.h"

using namespace sinclave;

int main() {
  std::printf("== Fig 9: macro-benchmark overhead, baseline vs SinClave ==\n");
  std::printf("(setup: generating RSA-3072 keys...)\n\n");

  workload::TestbedConfig cfg;
  cfg.seed = 90;
  cfg.rsa_bits = 3072;
  cfg.latency.connect = std::chrono::microseconds(3740);
  cfg.latency.round_trip = std::chrono::microseconds(350);
  cfg.latency.real_sleep = true;
  workload::Testbed bed(cfg);
  workload::register_workload_programs(bed.programs());

  const workload::WorkloadSpec specs[] = {
      workload::python_workload(),
      workload::openvino_workload(),
      workload::pytorch_workload(),
  };
  const double paper_overhead[] = {1.03, 2.49, 13.2};

  std::printf("%-10s %6s %14s %14s %10s %12s\n", "workload", "starts",
              "baseline (s)", "sinclave (s)", "overhead", "paper");
  constexpr int kRepetitions = 3;
  int i = 0;
  for (const auto& spec : specs) {
    double base_s = 0, sin_s = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto baseline = workload::run_workload(
          bed, spec, runtime::RuntimeMode::kBaseline);
      const auto sinclave = workload::run_workload(
          bed, spec, runtime::RuntimeMode::kSinclave);
      if (!baseline.ok || !sinclave.ok) {
        std::printf("%-10s FAILED: %s%s\n", spec.name.c_str(),
                    baseline.error.c_str(), sinclave.error.c_str());
        return 1;
      }
      base_s += std::chrono::duration<double>(baseline.total).count();
      sin_s += std::chrono::duration<double>(sinclave.total).count();
    }
    base_s /= kRepetitions;
    sin_s /= kRepetitions;
    const double overhead = (sin_s / base_s - 1.0) * 100.0;
    std::printf("%-10s %6d %14.3f %14.3f %9.2f%% %11.2f%%\n",
                spec.name.c_str(), spec.process_count, base_s, sin_s,
                overhead, paper_overhead[i++]);
  }
  std::printf(
      "\nshape check: overhead ranks python < openvino < pytorch, driven\n"
      "by enclave starts per run (1 / 2 / 8) against total runtime.\n");
  return 0;
}
