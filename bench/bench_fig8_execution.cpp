// Fig. 8 — "Measurement of program execution": a minimal program, swept
// over enclave heap sizes and execution modes, baseline vs SinClave.
//
// Modes (paper -> here):
//   simulation  -> run the program without any enclave
//   hardware    -> construct+EINIT the enclave (measurement dominates and
//                  grows linearly with heap; the paper sees up to ~5 s at
//                  2 GiB), run the program locally
//   attested    -> hardware + the full verifier flow (baseline: quote +
//                  config; SinClave: token retrieval + on-demand SigStruct
//                  + quote + config)
//
// Expected shape: baseline == SinClave for simulation/hardware; attested
// adds a near-constant extra for SinClave (paper: 132-144 ms vs 36-66 ms)
// that becomes negligible against multi-second starts at large heaps.
//
// Pass --full to extend the sweep to 2 GiB (adds a few minutes).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

using namespace sinclave;
using Clock = std::chrono::steady_clock;
using FpMillis = std::chrono::duration<double, std::milli>;

namespace {

struct Row {
  std::uint64_t heap_mb;
  double sim_ms, hw_ms, attested_ms;
};

int run_minimal_program() {
  // The paper's minimal C program: main() { return 0; }
  return 0;
}

Row measure(workload::Testbed& bed, runtime::RuntimeMode mode,
            std::uint64_t heap_mb) {
  const core::EnclaveImage image = core::EnclaveImage::synthetic(
      "fig8-" + std::to_string(heap_mb), 64 << 10, heap_mb << 20);
  const core::Signer signer(&bed.user_signer());
  const std::string session = "fig8-" + std::to_string(heap_mb) + "-" +
                              (mode == runtime::RuntimeMode::kBaseline
                                   ? "baseline"
                                   : "sinclave");

  cas::Policy policy;
  policy.session_name = session;
  policy.expected_signer =
      crypto::sha256(bed.user_signer().public_key().modulus_be());
  policy.config.program = "minimal";

  sgx::SigStruct sigstruct;
  if (mode == runtime::RuntimeMode::kBaseline) {
    const auto si = signer.sign_baseline(image);
    sigstruct = si.sigstruct;
    policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  } else {
    const auto si = signer.sign_sinclave(image);
    sigstruct = si.sigstruct;
    policy.require_singleton = true;
    policy.base_hash = si.base_hash;
  }
  bed.cas().install_policy(policy);

  Row row{heap_mb, 0, 0, 0};

  // Simulation mode: no enclave at all.
  {
    const auto t0 = Clock::now();
    volatile int rc = run_minimal_program();
    (void)rc;
    row.sim_ms = FpMillis(Clock::now() - t0).count();
  }

  // Hardware mode: construct + EINIT + run locally, no verifier.
  {
    const auto t0 = Clock::now();
    const auto enclave = runtime::start_enclave(bed.cpu(), image, sigstruct);
    volatile int rc = run_minimal_program();
    (void)rc;
    row.hw_ms = FpMillis(Clock::now() - t0).count();
    if (!enclave.ok()) std::fprintf(stderr, "hw einit failed!\n");
    bed.cpu().eremove(enclave.id);
  }

  // Attested mode: the full flow.
  {
    runtime::EnclaveRuntime rt = bed.make_runtime(mode);
    runtime::RunOptions o;
    o.cas_address = bed.cas_address();
    o.cas_identity = bed.cas().identity();
    o.session_name = session;

    const auto t0 = Clock::now();
    runtime::RunResult result;
    sgx::SgxCpu::EnclaveId id = 0;
    if (mode == runtime::RuntimeMode::kBaseline) {
      const auto enclave = runtime::start_enclave(bed.cpu(), image, sigstruct);
      id = enclave.id;
      result = rt.run(enclave, o);
    } else {
      const auto start = runtime::start_singleton_enclave(
          bed.cpu(), bed.network(), bed.cas_address(), image, sigstruct,
          session);
      id = start.enclave.id;
      result = rt.run(start.enclave, o);
    }
    row.attested_ms = FpMillis(Clock::now() - t0).count();
    if (!result.ok) std::fprintf(stderr, "attested run failed: %s\n",
                                 result.error.c_str());
    bed.cpu().eremove(id);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  std::printf("== Fig 8: program execution across heap sizes ==\n");
  std::printf("(setup: generating RSA-3072 keys...)\n\n");

  workload::TestbedConfig cfg;
  cfg.seed = 80;
  cfg.rsa_bits = 3072;
  cfg.latency.connect = std::chrono::microseconds(3740);
  cfg.latency.round_trip = std::chrono::microseconds(350);
  cfg.latency.real_sleep = true;
  workload::Testbed bed(cfg);
  bed.programs().register_program(
      "minimal", [](runtime::AppContext&) { return 0; });

  std::vector<std::uint64_t> heaps_mb = {32, 128, 512, 1024};
  if (full) heaps_mb.push_back(2048);

  std::printf("%-10s %-10s %12s %12s %12s %14s\n", "system", "heap",
              "sim (ms)", "hw (ms)", "attested(ms)", "attest delta");
  for (const auto mode :
       {runtime::RuntimeMode::kBaseline, runtime::RuntimeMode::kSinclave}) {
    const char* name =
        mode == runtime::RuntimeMode::kBaseline ? "baseline" : "sinclave";
    for (const std::uint64_t heap : heaps_mb) {
      const Row row = measure(bed, mode, heap);
      std::printf("%-10s %6lluMiB %12.2f %12.2f %12.2f %14.2f\n", name,
                  static_cast<unsigned long long>(row.heap_mb), row.sim_ms,
                  row.hw_ms, row.attested_ms, row.attested_ms - row.hw_ms);
    }
  }
  std::printf(
      "\nshape checks: hw grows ~linearly with heap (measurement cost);\n"
      "sinclave's attest delta exceeds baseline's by a ~constant amount\n"
      "(paper: 132-144 ms vs 36-66 ms) and washes out at large heaps.\n");
  return 0;
}
