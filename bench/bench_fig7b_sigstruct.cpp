// Fig. 7b — "Sigstruct Signing and Verification" with RSA-3072.
//
// Series (paper -> here):
//   Sign      (4.9 ms)  -> on-demand SigStruct creation (the per-singleton
//                          signing operation the verifier performs)
//   Verify C. (0.4 ms)  -> verification of a correct SigStruct
//   Verify E. (~0.4 ms) -> verification of a corrupted SigStruct —
//                          the paper notes failure costs the same
#include <benchmark/benchmark.h>

#include "core/on_demand.h"
#include "crypto/drbg.h"
#include "sgx/sigstruct.h"

namespace {

using namespace sinclave;

struct Fixture {
  crypto::RsaKeyPair key;
  sgx::SigStruct common;
  sgx::SigStruct corrupted;

  Fixture() : key([] {
    crypto::Drbg rng = crypto::Drbg::from_seed(8, "fig7b-key");
    return crypto::RsaKeyPair::generate(rng, 3072);
  }()) {
    common.enclave_hash.data[0] = 0x42;
    common.sign(key);
    corrupted = common;
    corrupted.signature[100] ^= 1;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Sign(benchmark::State& state) {
  Fixture& f = fixture();
  sgx::Measurement singleton_mr;
  std::uint8_t counter = 0;
  for (auto _ : state) {
    singleton_mr.data[0] = counter++;  // each singleton is unique
    benchmark::DoNotOptimize(
        core::make_on_demand_sigstruct(f.common, singleton_mr, f.key));
  }
}

void BM_VerifyCorrect(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.common.signature_valid());
  }
}

void BM_VerifyErroneous(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.corrupted.signature_valid());
  }
}

BENCHMARK(BM_Sign)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VerifyCorrect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VerifyErroneous)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
