// Fleet throughput: the event-driven CAS serving layer under load.
//
// A fleet of starter clients hammers the instance endpoint ("singleton
// page retrieval", the one protocol interaction SinClave adds per enclave
// start — Fig. 7c). Since the frontend became completion-driven, a request
// parks its backend-I/O stall on the timer wheel instead of a worker
// thread, so the old thread-per-request ceiling (workers / backend_io
// req/s) is gone. Three measurements pin that down:
//
//  1. Cache effect on a single retrieval: a pre-minted cache hit skips
//     the RSA-CRT signature (~5 ms at the SGX key size; smaller at this
//     benchmark's 1024-bit keys), the dominant CPU cost of Fig. 7c.
//
//  2. Closed-loop sync sweep, workers 1 -> 8, on the cached path with a
//     2 ms simulated backend stall. PR 1's thread-pooled frontend scaled
//     linearly with workers here because each worker slept through the
//     stall; the event-driven frontend is flat-at-the-top instead: even
//     ONE worker sustains the whole 16-client fleet, because no worker
//     ever holds a stall. Gate: rps at 1 worker >= 4x the thread-bound
//     ceiling (1 worker / backend_io). Also gates the no-regression bar:
//     cached-path p50 at 8 workers stays within 2x backend_io.
//
//  3. Open-loop async mode (the acceptance bar of the async frontend):
//     64 logical clients multiplexed over 4 issuing threads fire Poisson
//     arrivals via async_call against 8 workers with a 8 ms backend
//     stall. Offered load is independent of service time, so in-flight
//     climbs to ~backend_io/mean_interarrival per client. Gate: sustained
//     in-flight >= 4x worker threads.
//
// Keys are RSA-1024 to keep setup time sane; the *relative* effects are
// key-size independent (the cached path skips the signature entirely).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "server/cas_server.h"
#include "workload/load_gen.h"
#include "workload/testbed.h"

using namespace sinclave;
using FpMillis = std::chrono::duration<double, std::milli>;

namespace {

constexpr const char* kAddress = "cas.fleet";
constexpr std::size_t kClients = 16;
constexpr std::size_t kRequestsPerClient = 50;  // 800 requests per sweep
constexpr std::size_t kSessions = 4;
constexpr auto kBackendIo = std::chrono::microseconds(2000);

struct SweepResult {
  std::size_t workers = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t max_in_flight = 0;
};

}  // namespace

int main() {
  std::printf("== Fleet throughput: event-driven CAS serving layer ==\n");
  std::printf("clients=%zu requests=%zu sessions=%zu backend-io=%lldus\n\n",
              kClients, kClients * kRequestsPerClient, kSessions,
              static_cast<long long>(kBackendIo.count()));

  workload::TestbedConfig cfg;
  cfg.seed = 91;
  cfg.rsa_bits = 1024;
  workload::Testbed bed(cfg);

  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("fleet", 256 << 10, 4 << 20);
  const core::Signer signer(&bed.user_signer());
  const auto signed_image = signer.sign_sinclave(image);

  std::vector<std::string> sessions;
  for (std::size_t i = 0; i < kSessions; ++i) {
    cas::Policy policy;
    policy.session_name = "fleet-" + std::to_string(i);
    policy.expected_signer =
        crypto::sha256(bed.user_signer().public_key().modulus_be());
    policy.require_singleton = true;
    policy.base_hash = signed_image.base_hash;
    policy.config.program = "noop";
    bed.cas().install_policy(policy);
    sessions.push_back(policy.session_name);
  }

  // --- 1. cached vs uncached single-retrieval latency ---------------------
  {
    server::CasServerConfig scfg;
    scfg.workers = 1;
    server::CasServer server(&bed.cas(), scfg);
    cas::InstanceRequest request;
    request.session_name = sessions[0];
    request.common_sigstruct = signed_image.sigstruct;

    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    server.handle_instance(request);  // cold: verify + predict + sign
    const double cold_ms = FpMillis(Clock::now() - t0).count();

    t0 = Clock::now();
    server.handle_instance(request);  // warm memo, still signs
    const double warm_miss_ms = FpMillis(Clock::now() - t0).count();

    server.premint(sessions[0], signed_image.sigstruct, 1);
    t0 = Clock::now();
    server.handle_instance(request);  // pre-minted: no RSA on the path
    const double hit_ms = FpMillis(Clock::now() - t0).count();

    std::printf("single retrieval (rsa-1024):\n");
    std::printf("  cold (verify+sign)        %8.3f ms\n", cold_ms);
    std::printf("  memoized verify, signing  %8.3f ms\n", warm_miss_ms);
    std::printf("  pre-minted cache hit      %8.3f ms\n\n", hit_ms);
  }

  // --- 2. closed-loop worker sweep on the cached retrieval path -----------
  const std::size_t total_requests = kClients * kRequestsPerClient;
  std::vector<SweepResult> results;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    server::CasServerConfig scfg;
    scfg.workers = workers;
    scfg.policy_shards = 16;
    scfg.sigstruct_cache_capacity = 2 * total_requests;
    scfg.backend_io = kBackendIo;
    server::CasServer server(&bed.cas(), scfg);
    server.bind(bed.network(), kAddress);

    // Warm the cached path: policies decrypted, commons verified, and pre-
    // minted credentials per upcoming request (sessions are drawn from the
    // seeded client RNGs, so pad for the draw's variance).
    const std::size_t per_session = total_requests / kSessions + 64;
    for (const auto& session : sessions)
      server.premint(session, signed_image.sigstruct, per_session);

    workload::LoadGenConfig load;
    load.clients = kClients;
    load.requests_per_client = kRequestsPerClient;
    load.address = kAddress;
    load.sessions = sessions;
    load.base_seed = 91;
    const auto run =
        workload::run_instance_load(bed.network(), signed_image.sigstruct,
                                    load);
    if (run.failed != 0) {
      std::printf("FAILED: %llu requests failed (%s)\n",
                  static_cast<unsigned long long>(run.failed),
                  run.first_error.c_str());
      return 1;
    }

    SweepResult r;
    r.workers = workers;
    r.rps = run.requests_per_sec();
    r.p50_ms = FpMillis(run.latency.p50).count();
    r.p99_ms = FpMillis(run.latency.p99).count();
    r.cache_hits = server.metrics().sigstruct_cache_hits.load();
    r.cache_misses = server.metrics().sigstruct_cache_misses.load();
    r.max_in_flight = server.metrics().max_in_flight.load();
    results.push_back(r);

    server.unbind();
  }

  std::printf("closed loop, cached path, %zu requests, %zu client threads:\n",
              total_requests, kClients);
  std::printf("  %-8s %12s %10s %10s %8s %8s %10s\n", "workers", "req/s",
              "p50", "p99", "hits", "misses", "max-infl");
  for (const auto& r : results)
    std::printf("  %-8zu %12.1f %8.2fms %8.2fms %8llu %8llu %10llu\n",
                r.workers, r.rps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses),
                static_cast<unsigned long long>(r.max_in_flight));

  // The thread-bound ceiling a worker-pinned frontend cannot beat: with
  // stalls held on worker threads, W workers serve at most W/backend_io.
  const double ceiling_1w =
      1e6 / static_cast<double>(kBackendIo.count());  // req/s at 1 worker
  const double detach_factor = results.front().rps / ceiling_1w;
  const double p50_8w_ms = results.back().p50_ms;
  const double backend_ms = kBackendIo.count() / 1e3;
  std::printf(
      "\n1 worker vs thread-bound ceiling (%.0f req/s): %.1fx %s\n",
      ceiling_1w, detach_factor,
      detach_factor >= 4.0 ? "(>= 4x: stalls off-thread, PASS)"
                           : "(< 4x: FAIL)");
  std::printf("cached-path p50 at 8 workers: %.2fms %s\n", p50_8w_ms,
              p50_8w_ms <= 2.0 * backend_ms ? "(<= 2x backend-io: PASS)"
                                            : "(regressed: FAIL)");

  // --- 3. open-loop async mode: in-flight >> workers ----------------------
  constexpr std::size_t kOpenWorkers = 8;
  constexpr std::size_t kLogicalClients = 64;
  constexpr std::size_t kOpenRequests = 25;  // per logical client
  constexpr auto kOpenBackendIo = std::chrono::microseconds(8000);
  constexpr auto kMeanInterarrival = std::chrono::microseconds(8000);

  server::CasServerConfig scfg;
  scfg.workers = kOpenWorkers;
  scfg.policy_shards = 16;
  scfg.sigstruct_cache_capacity = 4096;
  scfg.backend_io = kOpenBackendIo;
  server::CasServer server(&bed.cas(), scfg);
  server.bind(bed.network(), kAddress);
  const std::size_t open_total = kLogicalClients * kOpenRequests;
  for (const auto& session : sessions)
    server.premint(session, signed_image.sigstruct,
                   open_total / kSessions + 120);

  workload::LoadGenConfig load;
  load.mode = workload::LoadMode::kOpen;
  load.clients = 4;  // issuing threads
  load.logical_clients = kLogicalClients;
  load.requests_per_client = kOpenRequests;
  load.mean_interarrival = kMeanInterarrival;
  load.address = kAddress;
  load.sessions = sessions;
  load.base_seed = 91;
  const auto run =
      workload::run_instance_load(bed.network(), signed_image.sigstruct,
                                  load);
  server.unbind();
  if (run.failed != 0) {
    std::printf("FAILED: %llu open-loop requests failed (%s)\n",
                static_cast<unsigned long long>(run.failed),
                run.first_error.c_str());
    return 1;
  }

  std::printf(
      "\nopen loop: %zu logical clients on %zu issuing threads, "
      "%zu workers, backend-io=%lldus, mean-interarrival=%lldus:\n",
      kLogicalClients, static_cast<std::size_t>(load.clients), kOpenWorkers,
      static_cast<long long>(kOpenBackendIo.count()),
      static_cast<long long>(kMeanInterarrival.count()));
  std::printf("  requests=%llu  req/s=%.1f  p50=%.2fms  p99=%.2fms\n",
              static_cast<unsigned long long>(run.ok),
              run.requests_per_sec(), FpMillis(run.latency.p50).count(),
              FpMillis(run.latency.p99).count());
  std::printf("  in-flight: sustained=%.1f  peak=%llu  (server peak=%llu)\n",
              run.sustained_in_flight,
              static_cast<unsigned long long>(run.max_in_flight),
              static_cast<unsigned long long>(
                  server.metrics().max_in_flight.load()));

  const double required = 4.0 * static_cast<double>(kOpenWorkers);
  std::printf("\nsustained in-flight vs %zu workers: %.1fx %s\n",
              kOpenWorkers,
              run.sustained_in_flight / static_cast<double>(kOpenWorkers),
              run.sustained_in_flight >= required
                  ? "(>= 4x workers: PASS)"
                  : "(< 4x workers: FAIL)");

  const bool pass = detach_factor >= 4.0 &&
                    p50_8w_ms <= 2.0 * backend_ms &&
                    run.sustained_in_flight >= required;
  return pass ? 0 : 1;
}
