// Fleet throughput: the concurrent CAS serving layer under load.
//
// A fleet of starter clients hammers the instance endpoint ("singleton
// page retrieval", the one protocol interaction SinClave adds per enclave
// start — Fig. 7c) while the worker count sweeps 1 -> 8. Two effects are
// measured:
//
//  1. Worker scaling on the *cached* retrieval path: the policy store holds
//     the decrypted policy, the verify-once memo skips the repeat RSA
//     verification, and the SigStruct cache serves pre-minted credentials,
//     so per-request CPU is small and each request is dominated by the
//     simulated backend I/O stall (the storage / attestation-provider round
//     trips a production CAS pays per request). In that latency-bound
//     regime — the regime thread-pooled frontends exist for — aggregate
//     requests/sec scales with the worker count even on a single core.
//     The acceptance bar: >= 3x at 8 workers vs 1 worker.
//
//  2. Cache effect on a single retrieval: a cache hit skips the RSA-CRT
//     signature (~5 ms at the SGX key size; smaller at this benchmark's
//     1024-bit keys, chosen so warming thousands of pool entries stays
//     fast), which is the dominant CPU cost of Fig. 7c.
//
// Keys are RSA-1024 to keep setup time sane; the *relative* effects are
// key-size independent (the cached path skips the signature entirely).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "server/cas_server.h"
#include "workload/load_gen.h"
#include "workload/testbed.h"

using namespace sinclave;
using FpMillis = std::chrono::duration<double, std::milli>;

namespace {

constexpr const char* kAddress = "cas.fleet";
constexpr std::size_t kClients = 16;
constexpr std::size_t kRequestsPerClient = 50;  // 800 requests per sweep
constexpr std::size_t kSessions = 4;
constexpr auto kBackendIo = std::chrono::microseconds(2000);

struct SweepResult {
  std::size_t workers = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

}  // namespace

int main() {
  std::printf("== Fleet throughput: CAS serving layer, worker sweep ==\n");
  std::printf("clients=%zu requests=%zu sessions=%zu backend-io=%lldus\n\n",
              kClients, kClients * kRequestsPerClient, kSessions,
              static_cast<long long>(kBackendIo.count()));

  workload::TestbedConfig cfg;
  cfg.seed = 91;
  cfg.rsa_bits = 1024;
  workload::Testbed bed(cfg);

  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("fleet", 256 << 10, 4 << 20);
  const core::Signer signer(&bed.user_signer());
  const auto signed_image = signer.sign_sinclave(image);

  std::vector<std::string> sessions;
  for (std::size_t i = 0; i < kSessions; ++i) {
    cas::Policy policy;
    policy.session_name = "fleet-" + std::to_string(i);
    policy.expected_signer =
        crypto::sha256(bed.user_signer().public_key().modulus_be());
    policy.require_singleton = true;
    policy.base_hash = signed_image.base_hash;
    policy.config.program = "noop";
    bed.cas().install_policy(policy);
    sessions.push_back(policy.session_name);
  }

  // --- 1. cached vs uncached single-retrieval latency ---------------------
  {
    server::CasServerConfig scfg;
    scfg.workers = 1;
    server::CasServer server(&bed.cas(), scfg);
    cas::InstanceRequest request;
    request.session_name = sessions[0];
    request.common_sigstruct = signed_image.sigstruct;

    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    server.handle_instance(request);  // cold: verify + predict + sign
    const double cold_ms = FpMillis(Clock::now() - t0).count();

    t0 = Clock::now();
    server.handle_instance(request);  // warm memo, still signs
    const double warm_miss_ms = FpMillis(Clock::now() - t0).count();

    server.premint(sessions[0], signed_image.sigstruct, 1);
    t0 = Clock::now();
    server.handle_instance(request);  // pre-minted: no RSA on the path
    const double hit_ms = FpMillis(Clock::now() - t0).count();

    std::printf("single retrieval (rsa-1024):\n");
    std::printf("  cold (verify+sign)        %8.3f ms\n", cold_ms);
    std::printf("  memoized verify, signing  %8.3f ms\n", warm_miss_ms);
    std::printf("  pre-minted cache hit      %8.3f ms\n\n", hit_ms);
  }

  // --- 2. worker sweep on the cached retrieval path -----------------------
  const std::size_t total_requests = kClients * kRequestsPerClient;
  std::vector<SweepResult> results;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    server::CasServerConfig scfg;
    scfg.workers = workers;
    scfg.policy_shards = 16;
    scfg.sigstruct_cache_capacity = 2 * total_requests;
    scfg.backend_io = kBackendIo;
    server::CasServer server(&bed.cas(), scfg);
    server.bind(bed.network(), kAddress);

    // Warm the cached path: policies decrypted, commons verified, and one
    // pre-minted credential per upcoming request.
    const std::size_t per_session =
        total_requests / kSessions + kClients;
    for (const auto& session : sessions)
      server.premint(session, signed_image.sigstruct, per_session);

    workload::LoadGenConfig load;
    load.clients = kClients;
    load.requests_per_client = kRequestsPerClient;
    load.address = kAddress;
    load.sessions = sessions;
    const auto run =
        workload::run_instance_load(bed.network(), signed_image.sigstruct,
                                    load);
    if (run.failed != 0) {
      std::printf("FAILED: %llu requests failed (%s)\n",
                  static_cast<unsigned long long>(run.failed),
                  run.first_error.c_str());
      return 1;
    }

    SweepResult r;
    r.workers = workers;
    r.rps = run.requests_per_sec();
    r.p50_ms = FpMillis(run.latency.p50).count();
    r.p99_ms = FpMillis(run.latency.p99).count();
    r.cache_hits = server.metrics().sigstruct_cache_hits.load();
    r.cache_misses = server.metrics().sigstruct_cache_misses.load();
    results.push_back(r);

    server.unbind();
  }

  std::printf("cached retrieval path, %zu requests, %zu client threads:\n",
              total_requests, kClients);
  std::printf("  %-8s %12s %10s %10s %8s %8s\n", "workers", "req/s", "p50",
              "p99", "hits", "misses");
  for (const auto& r : results)
    std::printf("  %-8zu %12.1f %8.2fms %8.2fms %8llu %8llu\n", r.workers,
                r.rps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses));

  const double speedup = results.back().rps / results.front().rps;
  std::printf("\nspeedup at 8 workers vs 1 worker: %.2fx %s\n", speedup,
              speedup >= 3.0 ? "(>= 3x: PASS)" : "(< 3x: FAIL)");
  return speedup >= 3.0 ? 0 : 1;
}
