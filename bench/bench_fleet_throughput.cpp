// Fleet throughput: the event-driven CAS serving layer under load.
//
// A fleet of starter clients hammers the instance endpoint ("singleton
// page retrieval", the one protocol interaction SinClave adds per enclave
// start — Fig. 7c). Since the frontend became completion-driven, a request
// parks its backend-I/O stall on the timer wheel instead of a worker
// thread, so the old thread-per-request ceiling (workers / backend_io
// req/s) is gone. Four measurements pin the serving-layer properties down:
//
//  1. Cache effect on a single retrieval: a pre-minted cache hit skips
//     the RSA-CRT signature (~2 ms at the SGX key size; smaller at this
//     benchmark's 1024-bit keys), the dominant CPU cost of Fig. 7c.
//
//  2. Batched vs serial minting: refills coalesce pool deficit into
//     CasService::mint_batch calls, paying the per-batch costs (common-
//     SigStruct verification, RNG lock, verifier id, signature scratch
//     arena) once per k credentials. Gate: batched per-credential cost
//     <= serial per-credential cost.
//
//  3. Closed-loop sync sweep, workers 1 -> 8, on the cached path with a
//     2 ms simulated backend stall. The event-driven frontend is
//     flat-at-the-top: even ONE worker sustains the whole 16-client
//     fleet, because no worker ever holds a stall. Gate: rps at 1 worker
//     >= 4x the thread-bound ceiling (1 worker / backend_io); cached-path
//     p50 at 8 workers stays within 2x backend_io.
//
//  4. Open-loop async mode (the acceptance bar of the async frontend):
//     64 logical clients multiplexed over 4 issuing threads fire Poisson
//     arrivals via async_call against 8 workers with an 8 ms backend
//     stall. Gate: sustained in-flight >= 4x worker threads.
//
// Keys are RSA-1024 to keep setup time sane; the *relative* effects are
// key-size independent (the cached path skips the signature entirely).
//
// Flags: --smoke shrinks request counts for CI bit-rot checks; --json F
// writes the machine-readable trajectory record (tools/run_benches.sh
// points it at BENCH_fleet.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "server/cas_server.h"
#include "workload/load_gen.h"
#include "workload/testbed.h"

using namespace sinclave;
using FpMillis = std::chrono::duration<double, std::milli>;
using Clock = std::chrono::steady_clock;

namespace {

constexpr const char* kAddress = "cas.fleet";
constexpr std::size_t kClients = 16;
constexpr std::size_t kSessions = 4;
constexpr auto kBackendIo = std::chrono::microseconds(2000);

struct SweepResult {
  std::size_t workers = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t max_in_flight = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  const std::size_t requests_per_client = smoke ? 10 : 50;
  // Kept full-size even under --smoke: the serial-vs-batch gate needs the
  // averaging, and 2x96 mints is milliseconds, not the slow part.
  const std::size_t mint_count = 96;

  std::printf("== Fleet throughput: event-driven CAS serving layer ==\n");
  std::printf("clients=%zu requests=%zu sessions=%zu backend-io=%lldus%s\n\n",
              kClients, kClients * requests_per_client, kSessions,
              static_cast<long long>(kBackendIo.count()),
              smoke ? " [smoke]" : "");

  workload::TestbedConfig cfg;
  cfg.seed = 91;
  cfg.rsa_bits = 1024;
  workload::Testbed bed(cfg);

  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("fleet", 256 << 10, 4 << 20);
  const core::Signer signer(&bed.user_signer());
  const auto signed_image = signer.sign_sinclave(image);

  std::vector<std::string> sessions;
  for (std::size_t i = 0; i < kSessions; ++i) {
    cas::Policy policy;
    policy.session_name = "fleet-" + std::to_string(i);
    policy.expected_signer =
        crypto::sha256(bed.user_signer().public_key().modulus_be());
    policy.require_singleton = true;
    policy.base_hash = signed_image.base_hash;
    policy.config.program = "noop";
    bed.cas().install_policy(policy);
    sessions.push_back(policy.session_name);
  }

  // --- 1. cached vs uncached single-retrieval latency ---------------------
  double cold_ms = 0, warm_miss_ms = 0, hit_ms = 0;
  {
    server::CasServerConfig scfg;
    scfg.workers = 1;
    server::CasServer server(&bed.cas(), scfg);
    cas::InstanceRequest request;
    request.session_name = sessions[0];
    request.common_sigstruct = signed_image.sigstruct;

    auto t0 = Clock::now();
    server.handle_instance(request);  // cold: verify + predict + sign
    cold_ms = FpMillis(Clock::now() - t0).count();

    t0 = Clock::now();
    server.handle_instance(request);  // warm memo, still signs
    warm_miss_ms = FpMillis(Clock::now() - t0).count();

    server.premint(sessions[0], signed_image.sigstruct, 1);
    t0 = Clock::now();
    server.handle_instance(request);  // pre-minted: no RSA on the path
    hit_ms = FpMillis(Clock::now() - t0).count();

    std::printf("single retrieval (rsa-1024):\n");
    std::printf("  cold (verify+sign)        %8.3f ms\n", cold_ms);
    std::printf("  memoized verify, signing  %8.3f ms\n", warm_miss_ms);
    std::printf("  pre-minted cache hit      %8.3f ms\n\n", hit_ms);
  }

  // --- 2. batched vs serial minting (the refill path's unit economics) ----
  // Interleaved best-of-3 chunks: per-credential cost is a few hundred
  // microseconds, so a transient scheduler stall in one chunk must not
  // decide the comparison.
  double serial_ms_per_cred = 0, batch_ms_per_cred = 0;
  {
    const auto policy = bed.cas().get_policy(sessions[0]);
    // Warm both paths (contexts, scratch TLS) outside the timed regions.
    (void)bed.cas().mint_credential(*policy, signed_image.sigstruct);
    (void)bed.cas().mint_batch(*policy, signed_image.sigstruct, 2);

    const std::size_t chunk = mint_count / 3;
    double serial_best = 1e99, batch_best = 1e99;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = Clock::now();
      for (std::size_t i = 0; i < chunk; ++i)
        (void)bed.cas().mint_credential(*policy, signed_image.sigstruct);
      serial_best = std::min(serial_best,
                             FpMillis(Clock::now() - t0).count() /
                                 static_cast<double>(chunk));
      t0 = Clock::now();
      const auto batch =
          bed.cas().mint_batch(*policy, signed_image.sigstruct, chunk);
      batch_best = std::min(batch_best,
                            FpMillis(Clock::now() - t0).count() /
                                static_cast<double>(batch.size()));
    }
    serial_ms_per_cred = serial_best;
    batch_ms_per_cred = batch_best;

    std::printf("minting 3x%zu credentials (rsa-1024), best chunk:\n", chunk);
    std::printf("  serial mint_credential    %8.3f ms/credential\n",
                serial_ms_per_cred);
    std::printf("  batched mint_batch        %8.3f ms/credential  (%.2fx)\n\n",
                batch_ms_per_cred, serial_ms_per_cred / batch_ms_per_cred);
  }

  // --- 3. closed-loop worker sweep on the cached retrieval path -----------
  const std::size_t total_requests = kClients * requests_per_client;
  std::vector<SweepResult> results;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    server::CasServerConfig scfg;
    scfg.workers = workers;
    scfg.policy_shards = 16;
    scfg.sigstruct_cache_capacity = 2 * total_requests;
    scfg.backend_io = kBackendIo;
    server::CasServer server(&bed.cas(), scfg);
    server.bind(bed.network(), kAddress);

    // Warm the cached path: policies decrypted, commons verified, and pre-
    // minted credentials per upcoming request (sessions are drawn from the
    // seeded client RNGs, so pad for the draw's variance).
    const std::size_t per_session = total_requests / kSessions + 64;
    for (const auto& session : sessions)
      server.premint(session, signed_image.sigstruct, per_session);

    workload::LoadGenConfig load;
    load.clients = kClients;
    load.requests_per_client = requests_per_client;
    load.address = kAddress;
    load.sessions = sessions;
    load.base_seed = 91;
    const auto run =
        workload::run_instance_load(bed.network(), signed_image.sigstruct,
                                    load);
    if (run.failed != 0) {
      std::printf("FAILED: %llu requests failed (%s)\n",
                  static_cast<unsigned long long>(run.failed),
                  run.first_error.c_str());
      return 1;
    }

    SweepResult r;
    r.workers = workers;
    r.rps = run.requests_per_sec();
    r.p50_ms = FpMillis(run.latency.p50).count();
    r.p99_ms = FpMillis(run.latency.p99).count();
    r.cache_hits = server.metrics().sigstruct_cache_hits.load();
    r.cache_misses = server.metrics().sigstruct_cache_misses.load();
    r.max_in_flight = server.metrics().max_in_flight.load();
    results.push_back(r);

    server.unbind();
  }

  std::printf("closed loop, cached path, %zu requests, %zu client threads:\n",
              total_requests, kClients);
  std::printf("  %-8s %12s %10s %10s %8s %8s %10s\n", "workers", "req/s",
              "p50", "p99", "hits", "misses", "max-infl");
  for (const auto& r : results)
    std::printf("  %-8zu %12.1f %8.2fms %8.2fms %8llu %8llu %10llu\n",
                r.workers, r.rps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses),
                static_cast<unsigned long long>(r.max_in_flight));

  // The thread-bound ceiling a worker-pinned frontend cannot beat: with
  // stalls held on worker threads, W workers serve at most W/backend_io.
  const double ceiling_1w =
      1e6 / static_cast<double>(kBackendIo.count());  // req/s at 1 worker
  const double detach_factor = results.front().rps / ceiling_1w;
  const double p50_8w_ms = results.back().p50_ms;
  const double backend_ms = kBackendIo.count() / 1e3;
  std::printf(
      "\n1 worker vs thread-bound ceiling (%.0f req/s): %.1fx %s\n",
      ceiling_1w, detach_factor,
      detach_factor >= 4.0 ? "(>= 4x: stalls off-thread, PASS)"
                           : "(< 4x: FAIL)");
  std::printf("cached-path p50 at 8 workers: %.2fms %s\n", p50_8w_ms,
              p50_8w_ms <= 2.0 * backend_ms ? "(<= 2x backend-io: PASS)"
                                            : "(regressed: FAIL)");
  // Gate with a noise allowance: the batch path strictly removes work
  // (per-credential RSA verify, RNG lock, arena setup), so anything past
  // noise above serial is a real regression. Smoke runs on shared CI
  // runners get a wider band — their chunks are the same size but the
  // ambient scheduler noise is much larger.
  const double mint_tolerance = smoke ? 1.10 : 1.02;
  const bool mint_pass =
      batch_ms_per_cred <= serial_ms_per_cred * mint_tolerance;
  std::printf("batched vs serial minting: %.3f vs %.3f ms/cred %s\n",
              batch_ms_per_cred, serial_ms_per_cred,
              mint_pass ? "(batch <= serial: PASS)" : "(regressed: FAIL)");

  // --- 4. open-loop async mode: in-flight >> workers ----------------------
  constexpr std::size_t kOpenWorkers = 8;
  constexpr std::size_t kLogicalClients = 64;
  const std::size_t open_requests = smoke ? 8 : 25;  // per logical client
  constexpr auto kOpenBackendIo = std::chrono::microseconds(8000);
  constexpr auto kMeanInterarrival = std::chrono::microseconds(8000);

  server::CasServerConfig scfg;
  scfg.workers = kOpenWorkers;
  scfg.policy_shards = 16;
  scfg.sigstruct_cache_capacity = 4096;
  scfg.backend_io = kOpenBackendIo;
  server::CasServer server(&bed.cas(), scfg);
  server.bind(bed.network(), kAddress);
  const std::size_t open_total = kLogicalClients * open_requests;
  for (const auto& session : sessions)
    server.premint(session, signed_image.sigstruct,
                   open_total / kSessions + 120);

  workload::LoadGenConfig load;
  load.mode = workload::LoadMode::kOpen;
  load.clients = 4;  // issuing threads
  load.logical_clients = kLogicalClients;
  load.requests_per_client = open_requests;
  load.mean_interarrival = kMeanInterarrival;
  load.address = kAddress;
  load.sessions = sessions;
  load.base_seed = 91;
  const auto run =
      workload::run_instance_load(bed.network(), signed_image.sigstruct,
                                  load);
  server.unbind();
  if (run.failed != 0) {
    std::printf("FAILED: %llu open-loop requests failed (%s)\n",
                static_cast<unsigned long long>(run.failed),
                run.first_error.c_str());
    return 1;
  }

  std::printf(
      "\nopen loop: %zu logical clients on %zu issuing threads, "
      "%zu workers, backend-io=%lldus, mean-interarrival=%lldus:\n",
      kLogicalClients, static_cast<std::size_t>(load.clients), kOpenWorkers,
      static_cast<long long>(kOpenBackendIo.count()),
      static_cast<long long>(kMeanInterarrival.count()));
  std::printf("  requests=%llu  req/s=%.1f  p50=%.2fms  p99=%.2fms\n",
              static_cast<unsigned long long>(run.ok),
              run.requests_per_sec(), FpMillis(run.latency.p50).count(),
              FpMillis(run.latency.p99).count());
  std::printf("  in-flight: sustained=%.1f  peak=%llu  (server peak=%llu)\n",
              run.sustained_in_flight,
              static_cast<unsigned long long>(run.max_in_flight),
              static_cast<unsigned long long>(
                  server.metrics().max_in_flight.load()));

  const double required = 4.0 * static_cast<double>(kOpenWorkers);
  std::printf("\nsustained in-flight vs %zu workers: %.1fx %s\n",
              kOpenWorkers,
              run.sustained_in_flight / static_cast<double>(kOpenWorkers),
              run.sustained_in_flight >= required
                  ? "(>= 4x workers: PASS)"
                  : "(< 4x workers: FAIL)");

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
      std::fprintf(f,
                   "  \"single_retrieval_ms\": {\"cold\": %.4f, "
                   "\"warm_miss\": %.4f, \"cache_hit\": %.4f},\n",
                   cold_ms, warm_miss_ms, hit_ms);
      std::fprintf(f,
                   "  \"mint\": {\"serial_ms_per_cred\": %.4f, "
                   "\"batch_ms_per_cred\": %.4f, \"speedup\": %.3f},\n",
                   serial_ms_per_cred, batch_ms_per_cred,
                   serial_ms_per_cred / batch_ms_per_cred);
      std::fprintf(f, "  \"closed_loop\": [\n");
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        std::fprintf(f,
                     "    {\"workers\": %zu, \"ops_per_sec\": %.1f, "
                     "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                     r.workers, r.rps, r.p50_ms, r.p99_ms,
                     i + 1 < results.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f,
                   "  \"open_loop\": {\"ops_per_sec\": %.1f, \"p50_ms\": "
                   "%.3f, \"p99_ms\": %.3f, \"sustained_in_flight\": %.1f, "
                   "\"max_in_flight\": %llu},\n",
                   run.requests_per_sec(), FpMillis(run.latency.p50).count(),
                   FpMillis(run.latency.p99).count(), run.sustained_in_flight,
                   static_cast<unsigned long long>(run.max_in_flight));
      // Per-phase attribution of the open-loop window (the load generator
      // scopes the tracer's phase histograms to its run).
      std::fprintf(f, "  \"phases\": [\n");
      for (std::size_t i = 0; i < run.phases.size(); ++i) {
        const auto& ph = run.phases[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"count\": %llu, \"p50_us\": %.1f, "
            "\"p99_us\": %.1f, \"mean_us\": %.1f}%s\n",
            ph.name, static_cast<unsigned long long>(ph.stats.count),
            static_cast<double>(ph.stats.p50.count()) / 1e3,
            static_cast<double>(ph.stats.p99.count()) / 1e3, static_cast<double>(ph.stats.mean().count()) / 1e3,
            i + 1 < run.phases.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path);
    } else {
      std::printf("\nWARNING: could not open %s for writing\n", json_path);
    }
  }

  const bool pass = detach_factor >= 4.0 &&
                    p50_8w_ms <= 2.0 * backend_ms && mint_pass &&
                    run.sustained_in_flight >= required;
  return pass ? 0 : 1;
}
