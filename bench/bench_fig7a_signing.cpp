// Fig. 7a — "Compilation duration": native vs baseline (SCONE signer) vs
// SinClave signer.
//
// "Compilation" here is building the enclave image (codegen stand-in) plus
// — for the two signing paths — measuring every page of the enclave and
// producing the SigStruct:
//   native    : image build only              (paper: 0.033 s)
//   baseline  : + optimized measurement + RSA (paper: 1.52 s)
//   SinClave  : + interruptible measurement with per-operation state
//               export + RSA                  (paper: 6.26 s, ~4x baseline
//               although the raw hash ratio is only ~2.25x — the
//               per-operation suspend/resume entry/exit costs dominate)
#include <benchmark/benchmark.h>

#include "core/image.h"
#include "core/signer.h"
#include "crypto/drbg.h"

namespace {

using namespace sinclave;

// A mid-size service enclave: 8 MiB code + 56 MiB heap = 64 MiB measured.
constexpr std::size_t kCodeBytes = 8u << 20;
constexpr std::uint64_t kHeapBytes = 56u << 20;

const crypto::RsaKeyPair& signer_key() {
  static const crypto::RsaKeyPair key = [] {
    crypto::Drbg rng = crypto::Drbg::from_seed(7, "fig7a-key");
    return crypto::RsaKeyPair::generate(rng, 3072);
  }();
  return key;
}

core::EnclaveImage compile_image() {
  // The codegen stand-in: materialize the image from a prebuilt template
  // (object code is compiled once; the signer-relevant work is downstream).
  static const core::EnclaveImage template_image =
      core::EnclaveImage::synthetic("fig7a", kCodeBytes, kHeapBytes);
  return template_image;
}

void BM_NativeCompile(benchmark::State& state) {
  compile_image();  // build the template outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_image());
  }
}

void BM_BaselineSign(benchmark::State& state) {
  compile_image();
  const core::Signer signer(&signer_key());
  for (auto _ : state) {
    const core::EnclaveImage image = compile_image();
    benchmark::DoNotOptimize(signer.sign_baseline(image));
  }
}

void BM_SinClaveSign(benchmark::State& state) {
  compile_image();
  const core::Signer signer(&signer_key());
  for (auto _ : state) {
    const core::EnclaveImage image = compile_image();
    benchmark::DoNotOptimize(signer.sign_sinclave(image));
  }
}

// Pure RSA-3072 signature throughput — the CPU cost a CAS pays per minted
// on-demand SigStruct (the measurement work above is per *image*, but the
// signature is per *singleton credential*). items_per_second is the "sign
// ops/s" number tracked across PRs in BENCH_signing.json.
void BM_RsaSign3072(benchmark::State& state) {
  const crypto::RsaKeyPair& key = signer_key();
  const Bytes msg = to_bytes("sigstruct-under-bench");
  crypto::Montgomery::Scratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign_pkcs1_sha256(msg, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// RSA-3072 verification with the cached per-key context (65537 ladder) —
// the per-retrieval cost of checking a common SigStruct when the serving
// layer's verify-once memo misses.
void BM_RsaVerify3072(benchmark::State& state) {
  const crypto::RsaKeyPair& key = signer_key();
  const Bytes msg = to_bytes("sigstruct-under-bench");
  const Bytes sig = key.sign_pkcs1_sha256(msg);
  const crypto::RsaPublicKey& pub = key.public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pub.verify_pkcs1_sha256(msg, sig));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(BM_NativeCompile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineSign)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SinClaveSign)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RsaSign3072)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RsaVerify3072)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
