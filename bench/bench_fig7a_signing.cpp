// Fig. 7a — "Compilation duration": native vs baseline (SCONE signer) vs
// SinClave signer.
//
// "Compilation" here is building the enclave image (codegen stand-in) plus
// — for the two signing paths — measuring every page of the enclave and
// producing the SigStruct:
//   native    : image build only              (paper: 0.033 s)
//   baseline  : + optimized measurement + RSA (paper: 1.52 s)
//   SinClave  : + interruptible measurement with per-operation state
//               export + RSA                  (paper: 6.26 s, ~4x baseline
//               although the raw hash ratio is only ~2.25x — the
//               per-operation suspend/resume entry/exit costs dominate)
#include <benchmark/benchmark.h>

#include "core/image.h"
#include "core/signer.h"
#include "crypto/drbg.h"

namespace {

using namespace sinclave;

// A mid-size service enclave: 8 MiB code + 56 MiB heap = 64 MiB measured.
constexpr std::size_t kCodeBytes = 8u << 20;
constexpr std::uint64_t kHeapBytes = 56u << 20;

const crypto::RsaKeyPair& signer_key() {
  static const crypto::RsaKeyPair key = [] {
    crypto::Drbg rng = crypto::Drbg::from_seed(7, "fig7a-key");
    return crypto::RsaKeyPair::generate(rng, 3072);
  }();
  return key;
}

core::EnclaveImage compile_image() {
  // The codegen stand-in: materialize the image from a prebuilt template
  // (object code is compiled once; the signer-relevant work is downstream).
  static const core::EnclaveImage template_image =
      core::EnclaveImage::synthetic("fig7a", kCodeBytes, kHeapBytes);
  return template_image;
}

void BM_NativeCompile(benchmark::State& state) {
  compile_image();  // build the template outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile_image());
  }
}

void BM_BaselineSign(benchmark::State& state) {
  compile_image();
  const core::Signer signer(&signer_key());
  for (auto _ : state) {
    const core::EnclaveImage image = compile_image();
    benchmark::DoNotOptimize(signer.sign_baseline(image));
  }
}

void BM_SinClaveSign(benchmark::State& state) {
  compile_image();
  const core::Signer signer(&signer_key());
  for (auto _ : state) {
    const core::EnclaveImage image = compile_image();
    benchmark::DoNotOptimize(signer.sign_sinclave(image));
  }
}

BENCHMARK(BM_NativeCompile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineSign)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SinClaveSign)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
