// Fig. 7c — "SinClave operation durations": the wall-clock breakdown of
// singleton page retrieval, the one protocol interaction SinClave adds.
//
// Components (paper, on their testbed):
//   open/close connection (O/C)      3.74 ms   (network latency, injected)
//   verify received SigStruct        0.4  ms   (RSA-3072 verify, measured)
//   calc expected measurement        32   us   (resume+page+finalize,
//                                               measured)
//   sign on-demand SigStruct         4.93 ms   (RSA-3072 CRT sign, measured)
//   CAS misc (encrypted DB, policy)  rest of 26.3 ms total
//
// Our CAS's policy engine is leaner than SCONE CAS, so "misc" is smaller in
// absolute terms; the crypto components and the ordering of costs are the
// reproducible part (see EXPERIMENTS.md).
#include <chrono>
#include <cstdio>

#include "cas/client.h"
#include "core/predictor.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "workload/testbed.h"

using namespace sinclave;
using Clock = std::chrono::steady_clock;
using FpMillis = std::chrono::duration<double, std::milli>;

int main() {
  std::printf("== Fig 7c: singleton page retrieval breakdown ==\n");
  std::printf("(setup: generating RSA-3072 keys...)\n");

  workload::TestbedConfig cfg;
  cfg.seed = 70;
  cfg.rsa_bits = 3072;
  cfg.latency.connect = std::chrono::microseconds(3740);  // the paper's O/C
  cfg.latency.round_trip = std::chrono::microseconds(350);
  cfg.latency.real_sleep = true;
  workload::Testbed bed(cfg);

  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("fig7c", 1 << 20, 4 << 20);
  const core::Signer signer(&bed.user_signer());
  const core::SinclaveSignedImage si = signer.sign_sinclave(image);

  cas::Policy policy;
  policy.session_name = "fig7c";
  policy.expected_signer =
      crypto::sha256(bed.user_signer().public_key().modulus_be());
  policy.require_singleton = true;
  policy.base_hash = si.base_hash;
  policy.config.program = "noop";
  policy.config.secrets["s"] = Bytes(256, 1);
  bed.cas().install_policy(policy);

  constexpr int kIterations = 30;
  double connect_ms = 0, request_ms = 0, verify_ms = 0, calc_ms = 0;
  double cas_sign_ms = 0, cas_db_ms = 0, cas_verify_ms = 0, cas_predict_ms = 0;
  double total_ms = 0;

  for (int i = 0; i < kIterations; ++i) {
    const auto t0 = Clock::now();

    // 1. Open the connection to the verifier (O/C) — eager connect()
    // through the SDK, so the setup cost stays separately measurable.
    cas::CasClient client = bed.make_cas_client();
    if (const Status s = client.connect(); !s.ok()) {
      std::printf("FATAL: %s\n", s.message().c_str());
      return 1;
    }
    const auto t1 = Clock::now();

    // 2. Request token + on-demand SigStruct.
    const cas::InstanceResult resp =
        client.get_instance("fig7c", si.sigstruct);
    if (!resp.ok()) {
      std::printf("FATAL: %s\n", resp.status.message().c_str());
      return 1;
    }
    const auto t2 = Clock::now();

    // 3. Starter-side verification of the received SigStruct.
    const bool ok = resp.singleton_sigstruct.signature_valid();
    const auto t3 = Clock::now();

    // 4. Starter-side expected-measurement calculation (cross-check).
    core::InstancePage page;
    page.token = resp.token;
    page.verifier_id = resp.verifier_id;
    const sgx::Measurement expect =
        core::MeasurementPredictor::predict(*policy.base_hash, page);
    const auto t4 = Clock::now();
    if (!ok || expect != resp.singleton_sigstruct.enclave_hash) {
      std::printf("FATAL: retrieval verification failed\n");
      return 1;
    }

    connect_ms += FpMillis(t1 - t0).count();
    request_ms += FpMillis(t2 - t1).count();
    verify_ms += FpMillis(t3 - t2).count();
    calc_ms += FpMillis(t4 - t3).count();
    total_ms += FpMillis(t4 - t0).count();

    const auto& ct = bed.cas().last_instance_timings();
    cas_sign_ms += FpMillis(ct.sign).count();
    cas_db_ms += FpMillis(ct.db_load).count();
    cas_verify_ms += FpMillis(ct.verify).count();
    cas_predict_ms += FpMillis(ct.predict).count();
  }

  const double n = kIterations;
  const double misc =
      request_ms / n - cas_sign_ms / n - cas_verify_ms / n -
      cas_predict_ms / n - cas_db_ms / n;
  std::printf("\nmean over %d retrievals (ms):\n", kIterations);
  std::printf("  %-36s %8.3f   (paper: 3.74)\n",
              "open connection (O/C)", connect_ms / n);
  std::printf("  %-36s %8.3f   (paper: 0.4)\n",
              "verify sigstruct (starter side)", verify_ms / n);
  std::printf("  %-36s %8.3f   (paper: 0.032)\n",
              "calc expected measurement", calc_ms / n);
  std::printf("  %-36s %8.3f   (paper: 4.93)\n",
              "sign on-demand sigstruct (CAS)", cas_sign_ms / n);
  std::printf("  %-36s %8.3f   (paper: n/a, part of misc)\n",
              "CAS policy DB decrypt+parse", cas_db_ms / n);
  std::printf("  %-36s %8.3f   (paper: ~17, dominated by CAS engine)\n",
              "misc (network RTT + CAS residue)", misc);
  std::printf("  %-36s %8.3f   (paper: 26.3)\n", "TOTAL", total_ms / n);
  return 0;
}
