// Chaos scenario driver: runs the named fault-injection scenarios from
// src/workload/chaos.h and gates on their explicit pass criteria.
//
// Unlike the throughput benches this one measures *invariants under
// abuse*, not speed: deterministic network faults (drops, resets, delay
// jitter, scripted partitions), server overload (admission shedding +
// per-request deadlines), client resilience (jittered retries, budgets,
// circuit breaker), and a live adversary — with every scenario asserting
// typed failures, exactly-once token spend, and metrics closure.
//
// Flags: --smoke shrinks per-scenario traffic for sanitizer CI runs;
// --json F writes the machine-readable record (tools/run_benches.sh
// points it at BENCH_chaos.json). Exit status is 0 iff every scenario
// passed.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "workload/chaos.h"

using namespace sinclave;

namespace {

void print_scenario(const workload::ChaosScenarioResult& r) {
  std::printf("  %-24s %s  ops=%llu ok=%llu typed=%llu attempts=%llu "
              "faults=%llu shed=%llu deadline=%llu trips=%llu  %.1f ms\n",
              r.name.c_str(), r.passed ? "PASS" : "FAIL",
              static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.typed_failures),
              static_cast<unsigned long long>(r.attempts),
              static_cast<unsigned long long>(r.faults_injected),
              static_cast<unsigned long long>(r.requests_shed),
              static_cast<unsigned long long>(r.deadline_exceeded),
              static_cast<unsigned long long>(r.breaker_trips), r.wall_ms);
  for (const std::string& f : r.failures)
    std::printf("      criterion FAILED: %s\n", f.c_str());
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
  }

  std::printf("bench_chaos: %zu scenarios, seed=%llu%s\n",
              workload::chaos_scenario_names().size(),
              static_cast<unsigned long long>(seed), smoke ? " [smoke]" : "");

  workload::ChaosConfig config;
  config.seed = seed;
  config.smoke = smoke;
  const std::vector<workload::ChaosScenarioResult> results =
      workload::run_chaos_suite(config);

  bool all_passed = true;
  for (const auto& r : results) {
    print_scenario(r);
    all_passed = all_passed && r.passed;
  }
  std::printf("bench_chaos: %s\n", all_passed ? "ALL PASS" : "FAILURES");

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f, "{\n  \"smoke\": %s,\n  \"seed\": %llu,\n",
                   smoke ? "true" : "false",
                   static_cast<unsigned long long>(seed));
      std::fprintf(f, "  \"scenarios\": [\n");
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"passed\": %s, \"ops\": %llu, "
            "\"ok\": %llu, \"typed_failures\": %llu, "
            "\"untyped_failures\": %llu, \"attempts\": %llu, "
            "\"requests_shed\": %llu, \"deadline_exceeded\": %llu, "
            "\"faults_injected\": %llu, \"breaker_trips\": %llu, "
            "\"wall_ms\": %.3f, \"failures\": [",
            r.name.c_str(), r.passed ? "true" : "false",
            static_cast<unsigned long long>(r.ops),
            static_cast<unsigned long long>(r.ok),
            static_cast<unsigned long long>(r.typed_failures),
            static_cast<unsigned long long>(r.untyped_failures),
            static_cast<unsigned long long>(r.attempts),
            static_cast<unsigned long long>(r.requests_shed),
            static_cast<unsigned long long>(r.deadline_exceeded),
            static_cast<unsigned long long>(r.faults_injected),
            static_cast<unsigned long long>(r.breaker_trips), r.wall_ms);
        for (std::size_t j = 0; j < r.failures.size(); ++j)
          std::fprintf(f, "%s\"%s\"", j == 0 ? "" : ", ",
                       json_escape(r.failures[j]).c_str());
        std::fprintf(f, "]}%s\n", i + 1 < results.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"all_passed\": %s\n}\n",
                   all_passed ? "true" : "false");
      std::fclose(f);
      std::printf("wrote %s\n", json_path);
    } else {
      std::printf("WARNING: could not open %s for writing\n", json_path);
    }
  }
  return all_passed ? 0 : 1;
}
