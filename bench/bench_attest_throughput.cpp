// Attested-session throughput: the striped SecureServer fast path under
// concurrent load.
//
// Every SinClave client must complete a quote-verified handshake before it
// can retrieve a config, so the attestation endpoint is the serving
// layer's front door. The seed-era SecureServer serialized ALL handshakes
// — quote verification, DH, HKDF, and the RSA identity signature included
// — behind one coarse mutex, so attested throughput was flat no matter
// how many workers the frontend ran. This bench drives concurrent FULL
// sessions (attest handshake with a real quote + one-time token, then an
// encrypted get_config) through server::CasServer and measures how
// session throughput scales with the worker count now that:
//
//   * sessions live in a striped table (per-stripe mutexes, per-session
//     locks) and are published only after their keys are derived,
//   * all handshake crypto and the quote-verification hook run with no
//     SecureServer lock held,
//   * token spends land in striped buckets and token minting draws from a
//     striped DRBG pool.
//
// Each planned session is prepared up front (instance retrieval, enclave
// construction, EREPORT, quote) so the timed region contains exactly the
// protocol work the server scales on: handshake + config fetch.
//
// Gate (like bench_fleet_throughput, enforced via exit status): >= 3x
// session throughput at 8 workers vs 1 worker with quote verification
// enabled. The full 3x bar needs >= 8 hardware threads; on smaller hosts
// the requirement degrades honestly (2x at >= 4, 1.2x at >= 2) and on a
// single-core host the scaling gate is waived (printed loudly) — the
// correctness invariants (zero failed sessions, every token spent exactly
// once) are always enforced.
//
// Flags: --smoke shrinks session counts for CI bit-rot checks; --json F
// writes the machine-readable trajectory record (tools/run_benches.sh
// points it at BENCH_attest.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cas/client.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "net/secure_channel.h"
#include "obs/trace.h"
#include "runtime/starter.h"
#include "server/cas_server.h"
#include "workload/testbed.h"

using namespace sinclave;
using FpMillis = std::chrono::duration<double, std::milli>;
using Clock = std::chrono::steady_clock;

namespace {

constexpr const char* kAddress = "cas.attest";
constexpr std::size_t kSessions = 4;  // distinct session policies

/// One fully prepared client: channel keys drawn, quote bound to them,
/// one-time token minted and registered. The timed region spends it with
/// attest + get_config.
struct Prepared {
  std::unique_ptr<cas::AttestedChannel> channel;
  cas::AttestPayload payload;
};

Prepared prepare_session(workload::Testbed& bed,
                         const core::EnclaveImage& image,
                         const sgx::SigStruct& common,
                         const std::string& session, std::uint64_t seed) {
  cas::InstanceRequest request;
  request.session_name = session;
  request.common_sigstruct = common;
  const cas::InstanceResponse resp = bed.cas().handle_instance(request);
  if (!resp.ok())
    throw Error("bench: instance retrieval failed: " + resp.status.message());

  core::InstancePage page;
  page.token = resp.token;
  page.verifier_id = resp.verifier_id;
  const auto enclave = runtime::start_enclave(
      bed.cpu(), image, resp.singleton_sigstruct, page);
  if (!enclave.ok()) throw Error("bench: enclave failed to initialize");

  Prepared p;
  p.channel = std::make_unique<cas::AttestedChannel>(
      &bed.network(), kAddress,
      crypto::Drbg::from_seed(seed, "attest-bench-channel"));
  const sgx::ReportData binding =
      net::channel_binding(p.channel->dh_public());
  const sgx::Report report =
      bed.cpu().ereport(enclave.id, bed.qe().target_info(), binding);
  const auto quote = bed.qe().generate_quote(report);
  if (!quote.has_value()) throw Error("bench: quote generation failed");
  p.payload.session_name = session;
  p.payload.quote = *quote;
  p.payload.token = resp.token;
  return p;
}

struct SweepResult {
  std::size_t workers = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// This sweep's contended lock acquisitions (delta — the SecureServer
  /// and its monotone stats outlive each sweep's CasServer).
  std::uint64_t stripe_collisions = 0;
  /// Sessions open at sweep end, cumulative across sweeps: nothing
  /// closes sessions here, so this tracks total attested sessions — a
  /// monotone sanity column, not per-sweep concurrency.
  std::uint64_t open_sessions = 0;
  std::uint64_t failed = 0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

SweepResult run_sweep(workload::Testbed& bed,
                      const core::EnclaveImage& image,
                      const sgx::SigStruct& common,
                      const std::vector<std::string>& sessions,
                      std::size_t workers, std::size_t total_sessions,
                      std::size_t client_threads, std::uint64_t seed_base) {
  server::CasServerConfig scfg;
  scfg.workers = workers;
  server::CasServer server(&bed.cas(), scfg);

  // Preparation is untimed (and single-threaded: the simulated CPU's
  // construction path is not the system under test).
  std::vector<Prepared> prepared;
  prepared.reserve(total_sessions);
  for (std::size_t i = 0; i < total_sessions; ++i)
    prepared.push_back(prepare_session(bed, image, common,
                                       sessions[i % sessions.size()],
                                       seed_base + i));

  server.bind(bed.network(), kAddress);
  const crypto::RsaPublicKey& identity = bed.cas().identity();
  // The SecureServer (and its stats) lives on the CasService across
  // sweeps; report this sweep's collisions as a delta.
  const auto secure_before = bed.cas().secure_channel_stats();

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::vector<double>> latencies(client_threads);
  std::vector<std::thread> clients;
  const auto t0 = Clock::now();
  for (std::size_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= prepared.size()) return;
        Prepared& p = prepared[i];
        const auto s0 = Clock::now();
        try {
          const Status attested = p.channel->attest(identity, p.payload);
          const auto cfg = p.channel->get_config();
          if (!attested.ok() || !cfg.ok()) {
            ++failed;
            continue;
          }
        } catch (const Error&) {
          ++failed;
          continue;
        }
        latencies[t].push_back(FpMillis(Clock::now() - s0).count());
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  SweepResult r;
  r.workers = workers;
  r.failed = failed.load();
  const double completed =
      static_cast<double>(total_sessions - r.failed);
  r.rps = wall_s > 0 ? completed / wall_s : 0.0;
  std::vector<double> merged;
  for (auto& v : latencies) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());
  r.p50_ms = percentile(merged, 0.50);
  r.p99_ms = percentile(merged, 0.99);
  const auto secure_after = bed.cas().secure_channel_stats();
  r.stripe_collisions =
      secure_after.stripe_collisions - secure_before.stripe_collisions;
  r.open_sessions = secure_after.open_sessions;
  server.unbind();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const std::size_t sessions_per_sweep = smoke ? 24 : 120;
  const std::size_t client_threads = smoke ? 8 : 16;
  const std::vector<std::size_t> worker_sweep =
      smoke ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 2, 4, 8};

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("== Attested-session throughput: striped SecureServer ==\n");
  std::printf(
      "sessions/sweep=%zu clients=%zu hw-threads=%u (rsa-1024, quote "
      "verification ON)%s\n\n",
      sessions_per_sweep, client_threads, hw, smoke ? " [smoke]" : "");

  workload::TestbedConfig cfg;
  cfg.seed = 17;
  cfg.rsa_bits = 1024;
  workload::Testbed bed(cfg);

  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("attest", 64 << 10, 256 << 10);
  const core::Signer signer(&bed.user_signer());
  const auto signed_image = signer.sign_sinclave(image);

  std::vector<std::string> sessions;
  for (std::size_t i = 0; i < kSessions; ++i) {
    cas::Policy policy;
    policy.session_name = "attest-" + std::to_string(i);
    policy.expected_signer =
        crypto::sha256(bed.user_signer().public_key().modulus_be());
    policy.require_singleton = true;
    policy.base_hash = signed_image.base_hash;
    policy.config.program = "noop";
    bed.cas().install_policy(policy);
    sessions.push_back(policy.session_name);
  }

  // --- single-session latency (the unit cost the sweep parallelizes) ----
  double single_ms = 0.0;
  {
    server::CasServerConfig scfg;
    scfg.workers = 1;
    server::CasServer server(&bed.cas(), scfg);
    Prepared p = prepare_session(bed, image, signed_image.sigstruct,
                                 sessions[0], 999);
    server.bind(bed.network(), kAddress);
    const auto t0 = Clock::now();
    const Status attested =
        p.channel->attest(bed.cas().identity(), p.payload);
    const auto config = p.channel->get_config();
    single_ms = FpMillis(Clock::now() - t0).count();
    server.unbind();
    if (!attested.ok() || !config.ok()) {
      std::printf("FAILED: warm-up session refused (%s)\n",
                  attested.message().c_str());
      return 1;
    }
    std::printf("single attest+get_config session: %8.3f ms\n\n", single_ms);
  }

  // --- worker sweep: full sessions, quote verification on every one ----
  // Phase attribution restarts here so the per-phase quantiles cover the
  // sweep, not the warm-up (quantiles are not delta-able).
  obs::Tracer::instance().reset_phases();
  const std::size_t tokens_before = bed.cas().tokens_used();
  std::vector<SweepResult> results;
  std::uint64_t total_failed = 0;
  for (std::size_t i = 0; i < worker_sweep.size(); ++i) {
    const auto r = run_sweep(bed, image, signed_image.sigstruct, sessions,
                             worker_sweep[i], sessions_per_sweep,
                             client_threads,
                             1000 * (i + 1));
    total_failed += r.failed;
    results.push_back(r);
  }

  std::printf("worker sweep, %zu full sessions each, %zu client threads:\n",
              sessions_per_sweep, client_threads);
  std::printf("  %-8s %14s %10s %10s %12s %10s\n", "workers", "sessions/s",
              "p50", "p99", "collisions", "open-sess");
  for (const auto& r : results)
    std::printf("  %-8zu %14.1f %8.2fms %8.2fms %12llu %10llu\n", r.workers,
                r.rps, r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.stripe_collisions),
                static_cast<unsigned long long>(r.open_sessions));

  // Per-phase latency attribution across the sweep (tracing stayed ON the
  // whole run — the <3% throughput budget vs the committed baseline is
  // the cost gate for exactly this).
  const auto phases = obs::Tracer::instance().phase_summaries();
  std::printf("\nper-phase latency attribution (tracing enabled):\n");
  std::printf("  %-24s %10s %12s %12s\n", "phase", "count", "p50", "p99");
  for (const auto& ph : phases)
    std::printf("  %-24s %10llu %10.1fus %10.1fus\n", ph.name,
                static_cast<unsigned long long>(ph.stats.count),
                static_cast<double>(ph.stats.p50.count()) / 1e3,
                static_cast<double>(ph.stats.p99.count()) / 1e3);

  // Correctness invariants: nothing failed, and every prepared token was
  // spent exactly once (the striped spend store never double-spends or
  // loses a spend under contention).
  const std::size_t tokens_spent = bed.cas().tokens_used() - tokens_before;
  const std::size_t total_sessions =
      sessions_per_sweep * worker_sweep.size();
  const bool tokens_ok = tokens_spent == total_sessions;
  std::printf("\nfailed sessions: %llu %s\n",
              static_cast<unsigned long long>(total_failed),
              total_failed == 0 ? "(PASS)" : "(FAIL)");
  std::printf("tokens spent exactly once: %zu/%zu %s\n", tokens_spent,
              total_sessions, tokens_ok ? "(PASS)" : "(FAIL)");

  // Scaling gate, degraded honestly by available hardware parallelism:
  // the handshake path is pure CPU (quote verify + DH + RSA), so a host
  // with H threads can at best approach min(workers, H)x.
  const double scaling = results.front().rps > 0
                             ? results.back().rps / results.front().rps
                             : 0.0;
  const double required = hw >= 8 ? 3.0 : hw >= 4 ? 2.0 : hw >= 2 ? 1.2
                                                                  : 0.0;
  bool scaling_pass = true;
  if (required > 0.0) {
    scaling_pass = scaling >= required;
    std::printf("8 workers vs 1: %.2fx %s\n", scaling,
                scaling_pass
                    ? "(>= required scaling: PASS)"
                    : "(below required scaling: FAIL)");
    std::printf("required on this host: %.1fx (hw-threads=%u)\n", required,
                hw);
  } else {
    std::printf(
        "8 workers vs 1: %.2fx — scaling gate WAIVED (single hardware "
        "thread; the 3x bar is enforced on >= 8-thread hosts)\n",
        scaling);
  }

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f, "{\n  \"smoke\": %s,\n  \"hw_threads\": %u,\n",
                   smoke ? "true" : "false", hw);
      std::fprintf(f, "  \"single_session_ms\": %.4f,\n", single_ms);
      std::fprintf(f, "  \"sweep\": [\n");
      for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        std::fprintf(
            f,
            "    {\"workers\": %zu, \"sessions_per_sec\": %.1f, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"stripe_collisions\": %llu, \"open_sessions_total\": %llu}%s\n",
            r.workers, r.rps, r.p50_ms, r.p99_ms,
            static_cast<unsigned long long>(r.stripe_collisions),
            static_cast<unsigned long long>(r.open_sessions),
            i + 1 < results.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f, "  \"phases\": [\n");
      for (std::size_t i = 0; i < phases.size(); ++i) {
        const auto& ph = phases[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"count\": %llu, \"p50_us\": %.1f, "
            "\"p99_us\": %.1f, \"mean_us\": %.1f}%s\n",
            ph.name, static_cast<unsigned long long>(ph.stats.count),
            static_cast<double>(ph.stats.p50.count()) / 1e3,
            static_cast<double>(ph.stats.p99.count()) / 1e3, static_cast<double>(ph.stats.mean().count()) / 1e3,
            i + 1 < phases.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n");
      std::fprintf(f,
                   "  \"scaling_8w_vs_1w\": %.3f,\n  \"required\": %.2f,\n"
                   "  \"gate\": \"%s\"\n}\n",
                   scaling, required,
                   required == 0.0 ? "waived"
                                   : (scaling_pass ? "pass" : "fail"));
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path);
    } else {
      std::printf("\nWARNING: could not open %s for writing\n", json_path);
    }
  }

  return (total_failed == 0 && tokens_ok && scaling_pass) ? 0 : 1;
}
