// Singleton fleet: scale-out under SinClave.
//
// A common worry with per-instance attestation is operability at scale.
// This example starts a fleet of N worker enclaves from ONE binary and ONE
// common SigStruct: each worker gets its own token, its own on-demand
// SigStruct and a unique MRENCLAVE, yet software distribution stays
// binary-identical (the paper's compatibility argument in §4.4).
//
// Build & run:  cmake --build build && ./build/examples/singleton_fleet
#include <cstdio>
#include <set>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

using namespace sinclave;

int main() {
  constexpr int kFleetSize = 12;
  workload::Testbed bed(workload::TestbedConfig{.seed = 44});

  bed.programs().register_program("worker", [](runtime::AppContext& ctx) {
    ctx.output = "worker up, shard=" + ctx.config->args.at(0);
    return 0;
  });

  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("worker", 128 << 10, 4 << 20);
  const core::Signer signer(&bed.user_signer());
  const auto signed_image = signer.sign_sinclave(image);

  cas::Policy policy;
  policy.session_name = "fleet";
  policy.expected_signer =
      crypto::sha256(bed.user_signer().public_key().modulus_be());
  policy.require_singleton = true;
  policy.base_hash = signed_image.base_hash;
  policy.config.program = "worker";
  policy.config.args = {"0"};
  policy.config.secrets["shared-cluster-key"] = to_bytes("fleet-secret");
  bed.cas().install_policy(policy);

  auto rt = bed.make_runtime(runtime::RuntimeMode::kSinclave);
  std::set<std::string> measurements;
  std::set<std::string> tokens;

  for (int i = 0; i < kFleetSize; ++i) {
    const auto start = runtime::start_singleton_enclave(
        bed.cpu(), bed.network(), bed.cas_address(), image,
        signed_image.sigstruct, "fleet");
    if (!start.ok()) {
      std::printf("worker %2d: FAILED (%s)\n", i, start.error.c_str());
      return 1;
    }
    runtime::RunOptions o;
    o.cas_address = bed.cas_address();
    o.cas_identity = bed.cas().identity();
    o.session_name = "fleet";
    const auto result = rt.run(start.enclave, o);
    if (!result.ok) {
      std::printf("worker %2d: FAILED (%s)\n", i, result.error.c_str());
      return 1;
    }
    const std::string mr =
        bed.cpu().identity(start.enclave.id).mr_enclave.hex();
    measurements.insert(mr);
    tokens.insert(start.token.hex());
    std::printf("worker %2d: MRENCLAVE %s...  %s\n", i, mr.substr(0, 16).c_str(),
                result.program_output.c_str());
  }

  std::printf("\nfleet of %d workers: %zu distinct measurements, %zu distinct "
              "tokens, %zu tokens consumed at CAS\n",
              kFleetSize, measurements.size(), tokens.size(),
              bed.cas().tokens_used());
  if (measurements.size() != kFleetSize) return 1;

  std::printf("one binary, one signature ceremony, %d unique attestable "
              "identities.\n", kFleetSize);
  return 0;
}
