// Attack demo: the §3 remote-attestation bypass, live — first against the
// baseline (SCONE-style) flow where it steals the user's secrets, then
// against SinClave where every stage is refused.
//
// Build & run:  cmake --build build && ./build/examples/attack_demo
#include <cstdio>

#include "attack/impersonator.h"
#include "attack/report_server.h"
#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

using namespace sinclave;

namespace {

constexpr const char* kReportServerAddr = "evil.report-server";

struct Deployment {
  sgx::SigStruct sigstruct;
  std::optional<core::BaseHash> base_hash;
};

Deployment deploy(workload::Testbed& bed, bool sinclave) {
  const core::EnclaveImage image = core::EnclaveImage::synthetic(
      "python-interpreter", 4 * sgx::kPageSize, 8 * sgx::kPageSize);
  const core::Signer signer(&bed.user_signer());

  cas::Policy policy;
  policy.session_name = "user-ai-app";
  policy.expected_signer =
      crypto::sha256(bed.user_signer().public_key().modulus_be());
  policy.config.program = "user-app";
  policy.config.secrets["model-license-key"] = to_bytes("EXTREMELY-SECRET");

  Deployment d;
  if (sinclave) {
    const auto si = signer.sign_sinclave(image);
    d.sigstruct = si.sigstruct;
    d.base_hash = si.base_hash;
    policy.require_singleton = true;
    policy.base_hash = si.base_hash;
  } else {
    const auto si = signer.sign_baseline(image);
    d.sigstruct = si.sigstruct;
    policy.expected_mr_enclave = si.sigstruct.enclave_hash;
  }
  bed.cas().install_policy(policy);
  return d;
}

core::EnclaveImage victim_image() {
  return core::EnclaveImage::synthetic("python-interpreter",
                                       4 * sgx::kPageSize, 8 * sgx::kPageSize);
}

}  // namespace

int main() {
  std::printf("== SinClave attack demo: remote attestation bypass ==\n");

  // ------------------------------------------------------------------
  std::printf("\n--- Phase 1: attacking the BASELINE flow ---\n");
  {
    workload::Testbed bed(workload::TestbedConfig{.seed = 7});
    attack::register_report_server(bed.programs());
    bed.programs().register_program("user-app", [](runtime::AppContext& ctx) {
      ctx.output = "user app";
      return 0;
    });
    const Deployment d = deploy(bed, /*sinclave=*/false);
    std::printf("[user]     deployed 'user-ai-app' pinned to MRENCLAVE %s...\n",
                d.sigstruct.enclave_hash.hex().substr(0, 16).c_str());

    // Attacker runs their own CAS and configures the victim interpreter
    // into a report server. Nothing of this shows in the measurement.
    auto attacker_rng = bed.child_rng("attacker");
    cas::CasService attacker_cas(
        &bed.attestation(), crypto::RsaKeyPair::generate(attacker_rng, 1024),
        bed.child_rng("attacker-cas"));
    attacker_cas.add_signer_key(bed.user_signer());
    attacker_cas.bind(bed.network(), "cas.attacker");
    cas::Policy coerced;
    coerced.session_name = "coerced";
    coerced.expected_signer =
        crypto::sha256(bed.user_signer().public_key().modulus_be());
    coerced.expected_mr_enclave = d.sigstruct.enclave_hash;
    coerced.config.program = attack::kReportServerProgram;
    coerced.config.args = {kReportServerAddr};
    attacker_cas.install_policy(coerced);

    const auto enclave =
        runtime::start_enclave(bed.cpu(), victim_image(), d.sigstruct);
    auto rt = bed.make_runtime(runtime::RuntimeMode::kBaseline);
    runtime::RunOptions o;
    o.cas_address = "cas.attacker";
    o.cas_identity = attacker_cas.identity();
    o.session_name = "coerced";
    const auto boot = rt.run(enclave, o);
    std::printf("[attacker] victim enclave booted as report server: %s\n",
                boot.ok ? "YES" : boot.error.c_str());

    attack::TeeImpersonator imp(&bed.network(), &bed.qe(), kReportServerAddr,
                                bed.child_rng("imp"));
    const auto attempt = imp.steal_config(bed.cas_address(),
                                          bed.cas().identity(), "user-ai-app");
    if (attempt.succeeded()) {
      std::printf("[attacker] ATTACK SUCCEEDED - stolen secret: %s\n",
                  to_string(attempt.stolen_config->secrets.at(
                                "model-license-key"))
                      .c_str());
      std::printf("[cas]      ...and the user's CAS saw a perfectly valid "
                  "attestation (verdict: %s)\n",
                  to_string(bed.cas().last_attest_verdict()));
    } else {
      std::printf("[attacker] attack failed (%s) — unexpected!\n",
                  attempt.failure.c_str());
      return 1;
    }
  }

  // ------------------------------------------------------------------
  std::printf("\n--- Phase 2: the same attack against SINCLAVE ---\n");
  {
    workload::Testbed bed(workload::TestbedConfig{.seed = 8});
    attack::register_report_server(bed.programs());
    bed.programs().register_program("user-app", [](runtime::AppContext& ctx) {
      ctx.output = "user app";
      return 0;
    });
    const Deployment d = deploy(bed, /*sinclave=*/true);
    std::printf("[user]     deployed 'user-ai-app' as a singleton session\n");

    auto attacker_rng = bed.child_rng("attacker");
    cas::CasService attacker_cas(
        &bed.attestation(), crypto::RsaKeyPair::generate(attacker_rng, 1024),
        bed.child_rng("attacker-cas"));
    attacker_cas.add_signer_key(bed.user_signer());
    attacker_cas.bind(bed.network(), "cas.attacker");

    // Variant (a): boot the common enclave against the attacker's CAS.
    const auto enclave =
        runtime::start_enclave(bed.cpu(), victim_image(), d.sigstruct);
    auto rt = bed.make_runtime(runtime::RuntimeMode::kSinclave);
    runtime::RunOptions o;
    o.cas_address = "cas.attacker";
    o.cas_identity = attacker_cas.identity();
    o.session_name = "coerced";
    const auto boot = rt.run(enclave, o);
    std::printf("[attacker] (a) coerce common enclave: %s\n",
                boot.ok ? "succeeded (BUG!)" : boot.error.c_str());

    // Variant (b): get a real token, redirect the singleton to attacker CAS.
    const auto start = runtime::start_singleton_enclave(
        bed.cpu(), bed.network(), bed.cas_address(), victim_image(),
        d.sigstruct, "user-ai-app");
    const auto boot2 = rt.run(start.enclave, o);
    std::printf("[attacker] (b) redirect singleton to attacker CAS: %s\n",
                boot2.ok ? "succeeded (BUG!)" : boot2.error.c_str());

    // Variant (c): impersonate with a fresh token but no matching enclave.
    const auto start2 = runtime::start_singleton_enclave(
        bed.cpu(), bed.network(), bed.cas_address(), victim_image(),
        d.sigstruct, "user-ai-app");
    attack::TeeImpersonator imp(&bed.network(), &bed.qe(),
                                "nothing-listening", bed.child_rng("imp"));
    const auto attempt =
        imp.steal_config(bed.cas_address(), bed.cas().identity(),
                         "user-ai-app", start2.token);
    std::printf("[attacker] (c) impersonate with fresh token: %s\n",
                attempt.succeeded() ? "succeeded (BUG!)"
                                    : attempt.failure.c_str());

    if (boot.ok || boot2.ok || attempt.succeeded()) return 1;
    std::printf("\nAll attack variants blocked. The user's secret stayed "
                "at the CAS.\n");
  }
  return 0;
}
