// Quickstart: deploy an application as a SinClave singleton enclave.
//
// Walks the full paper workflow end to end, printing each step:
//   1. the signer measures the image with interruptible SHA-256 and
//      produces the common SigStruct + base enclave hash,
//   2. the user installs a singleton policy (base hash + secrets) at their
//      CAS and uploads the signer key,
//   3. the (untrusted) starter requests a one-time token + on-demand
//      SigStruct and constructs the individualized enclave,
//   4. the runtime attests through the quoting enclave and receives the
//      configuration over a channel bound to the quote,
//   5. the application runs with its secrets.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

using namespace sinclave;

int main() {
  std::printf("== SinClave quickstart ==\n\n");

  // One simulated platform: CPU + quoting enclave + attestation service +
  // the user's CAS (with the user's signer key uploaded).
  workload::Testbed bed(workload::TestbedConfig{.seed = 2024});
  std::printf("[platform] CPU, quoting enclave and CAS ready\n");

  // The application: a payment service that needs a database password.
  bed.programs().register_program("payment-service",
                                  [](runtime::AppContext& ctx) {
    const Bytes& pw = ctx.config->secrets.at("db-password");
    ctx.output = "connected to db with password of " +
                 std::to_string(pw.size()) + " bytes";
    return 0;
  });

  // 1. Signer: measure + sign (SinClave path -> also emits the base hash).
  const core::EnclaveImage image = core::EnclaveImage::synthetic(
      "payment-service", /*code=*/64 << 10, /*heap=*/1 << 20);
  const core::Signer signer(&bed.user_signer());
  const core::SinclaveSignedImage signed_image = signer.sign_sinclave(image);
  std::printf("[signer] common MRENCLAVE  %s\n",
              signed_image.sigstruct.enclave_hash.hex().c_str());
  std::printf("[signer] base hash state   %s... (%llu bytes hashed)\n",
              to_hex(signed_image.base_hash.state.encode()).substr(0, 16).c_str(),
              static_cast<unsigned long long>(
                  signed_image.base_hash.state.byte_count));

  // 2. User: install the singleton policy with the secret.
  cas::Policy policy;
  policy.session_name = "payments-prod";
  policy.expected_signer =
      crypto::sha256(bed.user_signer().public_key().modulus_be());
  policy.require_singleton = true;
  policy.base_hash = signed_image.base_hash;
  policy.config.program = "payment-service";
  policy.config.secrets["db-password"] = to_bytes("correct-horse-battery");
  bed.cas().install_policy(policy);
  std::printf("[user]   policy 'payments-prod' installed at CAS\n");

  // 2b. The wire API is typed end to end: the CasClient SDK returns
  // StatusCodes, not strings to match — e.g. probing a session that does
  // not exist:
  cas::CasClient cas_client = bed.make_cas_client();
  const cas::InstanceResult probe =
      cas_client.get_instance("no-such-session", signed_image.sigstruct);
  std::printf("[client] probe 'no-such-session' -> %s (\"%s\")\n",
              to_string(probe.status.code), probe.status.message().c_str());

  // 3. Starter: token + on-demand SigStruct -> individualized enclave.
  const runtime::SingletonStart start = runtime::start_singleton_enclave(
      bed.cpu(), bed.network(), bed.cas_address(), image,
      signed_image.sigstruct, "payments-prod");
  if (!start.ok()) {
    std::printf("FATAL: %s\n", start.error.c_str());
    return 1;
  }
  std::printf("[starter] token            %s\n", start.token.hex().c_str());
  std::printf("[starter] singleton MRENCLAVE %s\n",
              bed.cpu().identity(start.enclave.id).mr_enclave.hex().c_str());
  std::printf("          (differs from the common MRENCLAVE above: the\n"
              "           instance page individualizes the measurement)\n");

  // 4+5. Runtime: attest, fetch config, run.
  runtime::EnclaveRuntime rt = bed.make_runtime(runtime::RuntimeMode::kSinclave);
  runtime::RunOptions options;
  options.cas_address = bed.cas_address();
  options.cas_identity = bed.cas().identity();
  options.session_name = "payments-prod";
  const runtime::RunResult result = rt.run(start.enclave, options);
  if (!result.ok) {
    std::printf("FATAL: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("[enclave] attested; config received; program says: %s\n",
              result.program_output.c_str());
  std::printf("[cas]     tokens used: %zu (this one can never attest again)\n",
              bed.cas().tokens_used());

  std::printf("\nquickstart complete.\n");
  return 0;
}
