// Encrypted-volume example: the "Python with encrypted volume" scenario
// the paper macro-benchmarks [50], including the completeness check —
// the enclave refuses volumes that do not match the attested manifest.
//
// Build & run:  cmake --build build && ./build/examples/encrypted_volume
#include <cstdio>

#include "core/signer.h"
#include "crypto/sha256.h"
#include "runtime/starter.h"
#include "workload/testbed.h"

using namespace sinclave;

int main() {
  std::printf("== Encrypted volume with manifest completeness ==\n\n");

  workload::Testbed bed(workload::TestbedConfig{.seed = 31});

  // A "python script" that processes every file on its volume.
  bed.programs().register_program("python", [](runtime::AppContext& ctx) {
    if (ctx.volume == nullptr) return 1;
    std::size_t files = 0, bytes = 0;
    for (const auto& name : ctx.volume->list_files()) {
      const auto content = ctx.volume->read_file(name);
      if (!content.has_value()) return 2;
      ++files;
      bytes += content->size();
    }
    ctx.output = "processed " + std::to_string(files) + " files, " +
                 std::to_string(bytes) + " bytes";
    return 0;
  });

  // Build the user's volume: scripts + data, encrypted client side.
  auto key_rng = bed.child_rng("volume-key");
  const Bytes fs_key = key_rng.generate(32);
  fs::EncryptedVolume volume(fs_key, bed.child_rng("volume"));
  volume.write_file("main.py", to_bytes("import model; model.run()"));
  volume.write_file("model/weights.bin", Bytes(256 << 10, 0x5a));
  volume.write_file("data/input.csv", to_bytes("a,b,c\n1,2,3\n"));
  std::printf("[user] volume with %zu files, manifest root %s...\n",
              volume.list_files().size(),
              volume.manifest_root().hex().substr(0, 16).c_str());

  // Deploy as a singleton session whose config pins the manifest root.
  const core::EnclaveImage image =
      core::EnclaveImage::synthetic("python", 2 << 20, 8 << 20);
  const core::Signer signer(&bed.user_signer());
  const auto signed_image = signer.sign_sinclave(image);

  cas::Policy policy;
  policy.session_name = "python-volume";
  policy.expected_signer =
      crypto::sha256(bed.user_signer().public_key().modulus_be());
  policy.require_singleton = true;
  policy.base_hash = signed_image.base_hash;
  policy.config.program = "python";
  policy.config.fs_key = fs_key;
  policy.config.fs_manifest_root = volume.manifest_root();
  bed.cas().install_policy(policy);

  auto rt = bed.make_runtime(runtime::RuntimeMode::kSinclave);
  runtime::RunOptions options;
  options.cas_address = bed.cas_address();
  options.cas_identity = bed.cas().identity();
  options.session_name = "python-volume";

  // Run 1: the honest host provides the correct volume.
  {
    const auto start = runtime::start_singleton_enclave(
        bed.cpu(), bed.network(), bed.cas_address(), image,
        signed_image.sigstruct, "python-volume");
    options.volume_blobs = volume.host_export();
    const auto result = rt.run(start.enclave, options);
    std::printf("[run 1] honest volume:   %s\n",
                result.ok ? result.program_output.c_str()
                          : result.error.c_str());
    if (!result.ok) return 1;
  }

  // Run 2: the host tampers a ciphertext blob -> AEAD failure.
  {
    const auto start = runtime::start_singleton_enclave(
        bed.cpu(), bed.network(), bed.cas_address(), image,
        signed_image.sigstruct, "python-volume");
    auto blobs = volume.host_export();
    blobs["model/weights.bin"][1000] ^= 1;
    options.volume_blobs = std::move(blobs);
    const auto result = rt.run(start.enclave, options);
    std::printf("[run 2] tampered blob:   %s\n",
                result.ok ? "ACCEPTED (BUG!)" : result.error.c_str());
    if (result.ok) return 1;
  }

  // Run 3: the host swaps in a *consistent* but different volume
  // (encrypted under the same key) -> manifest mismatch.
  {
    fs::EncryptedVolume other(fs_key, bed.child_rng("other-volume"));
    other.write_file("main.py", to_bytes("import os; os.exfiltrate()"));
    const auto start = runtime::start_singleton_enclave(
        bed.cpu(), bed.network(), bed.cas_address(), image,
        signed_image.sigstruct, "python-volume");
    options.volume_blobs = other.host_export();
    const auto result = rt.run(start.enclave, options);
    std::printf("[run 3] swapped volume:  %s\n",
                result.ok ? "ACCEPTED (BUG!)" : result.error.c_str());
    if (result.ok) return 1;
  }

  std::printf("\ncompleteness holds: only the attested filesystem state "
              "runs.\n");
  return 0;
}
