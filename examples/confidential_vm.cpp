// Confidential-VM singleton example (§4.4's extension): the VM-level reuse
// attack against baseline launch-digest pinning, and the singleton defense.
//
// Build & run:  cmake --build build && ./build/examples/confidential_vm
#include <cstdio>

#include "cvm/confidential_vm.h"

using namespace sinclave;

int main() {
  std::printf("== Singleton confidential VMs (SEV-SNP/TDX model) ==\n\n");

  crypto::Drbg sp_rng = crypto::Drbg::from_seed(51, "sp");
  cvm::SecureProcessor sp(std::move(sp_rng));
  cvm::VmVerifier verifier(crypto::Drbg::from_seed(52, "verifier"));
  verifier.trust_platform(sp.platform_key());

  const cvm::VmImage image = cvm::VmImage::synthetic("db-server", 512 << 10);

  // --- baseline: pin the static launch digest ---
  cvm::LaunchMeasurement m;
  m.measure_image(image);
  verifier.register_baseline("db-baseline", m.finalize());

  const auto vm = sp.launch(image);
  std::printf("[baseline] victim VM attests:      %s\n",
              to_string(verifier.verify("db-baseline", sp.attest(vm, {}),
                                        std::nullopt)));

  // The adversary clones the VM image (they control the host's storage)
  // and boots it in their lab. Baseline attestation cannot tell.
  const auto clone = sp.launch(image);
  std::printf("[baseline] CLONED VM attests:      %s   <-- the reuse flaw\n",
              to_string(verifier.verify("db-baseline", sp.attest(clone, {}),
                                        std::nullopt)));

  // --- singleton: token in the launch digest ---
  cvm::LaunchMeasurement base;
  base.measure_image(image);
  verifier.register_singleton("db-singleton", base.export_state());

  const auto block = verifier.issue_id_block("db-singleton");
  const auto svm = sp.launch(image, block->render());
  std::printf("\n[singleton] tokenized VM attests:  %s\n",
              to_string(verifier.verify("db-singleton", sp.attest(svm, {}),
                                        block->token)));

  const auto sclone = sp.launch(image, block->render());
  std::printf("[singleton] clone w/ same token:   %s\n",
              to_string(verifier.verify("db-singleton", sp.attest(sclone, {}),
                                        block->token)));
  const auto fresh = verifier.issue_id_block("db-singleton");
  const auto plain_clone = sp.launch(image);
  std::printf("[singleton] clone w/o id block:    %s\n",
              to_string(verifier.verify("db-singleton",
                                        sp.attest(plain_clone, {}),
                                        fresh->token)));

  std::printf("\neach singleton VM attests exactly once; clones are "
              "distinguishable.\n");
  return 0;
}
